//! The SOA-equivalence rewriter (Section 4 of the paper).
//!
//! Given a query plan containing sampling operators, derive an
//! SOA-equivalent plan of the special form *single GUS quasi-operator
//! directly below the aggregate*, whose parameters feed Theorem 1. The
//! transformation is **analysis only** — the original plan is what executes;
//! this module just computes the top GUS's `(a, b̄)` by:
//!
//! 1. translating every concrete sampling operator into a GUS quasi-operator
//!    (Section 4.2, the Figure 1 table),
//! 2. inserting identity GUS `G(1,1̄)` over unsampled relations (Prop. 4),
//! 3. commuting GUS with selections unchanged (Prop. 5),
//! 4. merging the GUS of join operands (Prop. 6), and
//! 5. compacting stacked samplers (Prop. 8),
//!
//! working bottom-up exactly as the paper's Figure 4 walk-through. Every
//! application is recorded in a [`RewriteTrace`] so examples and experiments
//! can print the same step-by-step tables as the paper.

use std::fmt;
use std::sync::Arc;

use sa_core::{GusParams, LineageSchema, RelSet};
use sa_sampling::{LineageUnit, SamplingMethod};
use sa_storage::Catalog;

use crate::error::PlanError;
use crate::plan::LogicalPlan;
use crate::Result;

/// Which algebra rule a rewrite step applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Section 4.2: concrete sampling method → GUS quasi-operator.
    TranslateSampling,
    /// Proposition 4: insert `G(1,1̄)` over an unsampled relation.
    IdentityInsertion,
    /// Proposition 5: GUS commutes with selection.
    SelectionCommute,
    /// Proposition 6: GUS operators merge across a join.
    JoinCommute,
    /// Proposition 8: stacked GUS operators compact.
    Compaction,
    /// Proposition 7: union of two independent samples of one expression.
    UnionSamples,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Rule::TranslateSampling => "translate (Sec 4.2)",
            Rule::IdentityInsertion => "identity (Prop 4)",
            Rule::SelectionCommute => "σ-commute (Prop 5)",
            Rule::JoinCommute => "⋈-commute (Prop 6)",
            Rule::Compaction => "compaction (Prop 8)",
            Rule::UnionSamples => "∪-merge (Prop 7)",
        })
    }
}

/// One recorded rewrite step.
#[derive(Debug, Clone)]
pub struct RewriteStep {
    /// The rule applied.
    pub rule: Rule,
    /// Human-readable description (which operators, which relations).
    pub description: String,
    /// The GUS parameters of the affected subtree *after* the step.
    pub gus: GusParams,
}

/// The ordered list of rewrite steps, renderable like the paper's figures.
#[derive(Debug, Clone, Default)]
pub struct RewriteTrace {
    /// Steps in application order (bottom-up, left-to-right).
    pub steps: Vec<RewriteStep>,
}

impl RewriteTrace {
    fn push(&mut self, rule: Rule, description: impl Into<String>, gus: &GusParams) {
        self.steps.push(RewriteStep {
            rule,
            description: description.into(),
            gus: gus.clone(),
        });
    }

    /// Render the trace as numbered lines.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, s) in self.steps.iter().enumerate() {
            out.push_str(&format!(
                "{:>2}. {:<22} {}\n",
                i + 1,
                s.rule.to_string(),
                s.description
            ));
        }
        out
    }
}

/// The union/join structure of the plan's sampling design.
///
/// The top GUS in [`SoaAnalysis::gus`] is the fully composed design —
/// enough for batch estimation, where every sampled tuple has been seen.
/// Mid-stream population scaling (a Prop-8 WOR factor over the scanned
/// prefix) needs more: a union's branches cover the base relations
/// *independently*, so each branch must get its own prefix factor before
/// the branch designs are re-unioned (Prop 7) — compaction does not
/// distribute over union. `GusTree` keeps exactly the structure that walk
/// needs: maximal union-free subtrees collapse into [`GusTree::Leaf`]
/// nodes (their GUS composes by compaction, which is associative), while
/// unions — and joins above unions — remain interior nodes.
#[derive(Debug, Clone)]
pub enum GusTree {
    /// A union-free subtree: its compacted GUS (embedded in the global
    /// lineage schema) and the aliases it scans, in scan order.
    Leaf {
        /// Compacted GUS of the subtree, embedded in the global schema.
        gus: GusParams,
        /// Base-relation aliases the subtree scans, in scan order.
        rels: Vec<String>,
    },
    /// Proposition 7 union of two independent samplings of one expression.
    /// Both branches scan the same aliases.
    Union {
        /// First sampling of the expression.
        left: Box<GusTree>,
        /// Second, independent sampling of the same expression.
        right: Box<GusTree>,
    },
    /// A join whose operands could not be collapsed (at least one side
    /// contains a union). The sides sample disjoint relations and compose
    /// by compaction (Prop 6).
    Join {
        /// Left join operand.
        left: Box<GusTree>,
        /// Right join operand.
        right: Box<GusTree>,
    },
}

impl GusTree {
    /// Number of distinct base relations below this node (union branches
    /// share their relations and count once, matching
    /// [`LogicalPlan::base_relations`]).
    pub fn n_rels(&self) -> usize {
        match self {
            GusTree::Leaf { rels, .. } => rels.len(),
            GusTree::Union { left, .. } => left.n_rels(),
            GusTree::Join { left, right } => left.n_rels() + right.n_rels(),
        }
    }

    /// Does this subtree union independent samples anywhere?
    pub fn has_union(&self) -> bool {
        match self {
            GusTree::Leaf { .. } => false,
            GusTree::Union { .. } => true,
            GusTree::Join { left, right } => left.has_union() || right.has_union(),
        }
    }
}

/// The result of the SOA rewriting: everything the SBox needs.
#[derive(Debug, Clone)]
pub struct SoaAnalysis {
    /// The plan with all sampling operators removed (the relational subtree
    /// that sits below the single top GUS in the SOA-equivalent plan).
    pub core: LogicalPlan,
    /// The single top-level GUS quasi-operator's parameters.
    pub gus: GusParams,
    /// The union/join structure behind [`SoaAnalysis::gus`], for
    /// per-branch mid-stream scaling. Union-free plans are a single leaf
    /// carrying exactly `gus`.
    pub gus_tree: GusTree,
    /// The plan's lineage schema (base-relation aliases in scan order).
    pub schema: Arc<LineageSchema>,
    /// Per-relation lineage granularity (row, or block for `SYSTEM`).
    pub lineage_units: Vec<LineageUnit>,
    /// The applied rewrite steps.
    pub trace: RewriteTrace,
}

impl SoaAnalysis {
    /// Render the top GUS as a parameter table in the style of the paper's
    /// Figure 4/5 coefficient tables.
    pub fn gus_table(&self) -> String {
        render_gus_table(&self.gus)
    }
}

/// Render any GUS parameter set as a `b_T`-per-subset table.
pub fn render_gus_table(gus: &GusParams) -> String {
    let mut out = format!("a = {:.4e}\n", gus.a());
    let n = gus.n();
    for t_idx in 0..1usize << n {
        let t = RelSet::from_bits(t_idx as u32);
        out.push_str(&format!(
            "b{:<12} = {:.4e}\n",
            gus.schema().display_set(t),
            gus.b(t)
        ));
    }
    out
}

/// Rewrite `plan` into its SOA-equivalent single-top-GUS form.
pub fn rewrite(plan: &LogicalPlan, catalog: &Catalog) -> Result<SoaAnalysis> {
    plan.validate(catalog)?;
    let rels = plan.base_relations();
    let schema = LineageSchema::new(&rels)?;
    let lineage_units = lineage_units(plan)?;
    let mut trace = RewriteTrace::default();
    let (core, gus, gus_tree) = analyze(plan, catalog, &schema, &mut trace)?;
    Ok(SoaAnalysis {
        core,
        gus,
        gus_tree,
        schema,
        lineage_units,
        trace,
    })
}

/// Per-relation lineage granularity, validating that `SYSTEM` sampling is
/// not stacked with row-level sampling (mixed granularities have no GUS
/// representation at either level).
fn lineage_units(plan: &LogicalPlan) -> Result<Vec<LineageUnit>> {
    let per_rel = plan.sampling_per_relation();
    let mut units = Vec::with_capacity(per_rel.len());
    for (rel, stack) in plan.base_relations().iter().zip(&per_rel) {
        let has_system = stack
            .iter()
            .any(|m| matches!(m, SamplingMethod::System { .. }));
        if has_system && stack.len() > 1 {
            return Err(PlanError::Malformed(format!(
                "relation `{rel}` stacks SYSTEM (block-level) sampling with other samplers: \
                 mixed lineage granularity is not a GUS"
            )));
        }
        units.push(if has_system {
            LineageUnit::Block
        } else {
            LineageUnit::Row
        });
    }
    Ok(units)
}

/// Bottom-up analysis: returns the sampling-free core plan of the subtree,
/// its accumulated GUS over the **global** lineage schema, and the
/// union/join structure of that GUS (see [`GusTree`]).
fn analyze(
    node: &LogicalPlan,
    catalog: &Catalog,
    global: &Arc<LineageSchema>,
    trace: &mut RewriteTrace,
) -> Result<(LogicalPlan, GusParams, GusTree)> {
    match node {
        LogicalPlan::Scan { table, alias } => {
            let gus = GusParams::identity(global.clone());
            trace.push(
                Rule::IdentityInsertion,
                format!("G(1,1̄) over unsampled relation `{alias}` (table `{table}`)"),
                &gus,
            );
            let tree = GusTree::Leaf {
                gus: gus.clone(),
                rels: vec![alias.clone()],
            };
            Ok((node.clone(), gus, tree))
        }
        LogicalPlan::Sample { method, input } => {
            let (core, inner_gus, _) = analyze(input, catalog, global, trace)?;
            // validate() guarantees the chain below is Sample*/Scan.
            let (alias, table_name) = base_of(input)?;
            let table = catalog.get(table_name)?;
            let local = method.gus(alias, &table)?;
            let embedded = local.embed_by_name(global.clone())?;
            trace.push(
                Rule::TranslateSampling,
                format!(
                    "{method} on `{alias}` → GUS with a={:.4e}, b_∅={:.4e}, b_{{{alias}}}={:.4e}",
                    local.a(),
                    local.b(RelSet::EMPTY),
                    local.b(RelSet::singleton(0)),
                ),
                &embedded,
            );
            let was_sampled = !inner_gus.support().is_empty();
            let gus = inner_gus.compact(&embedded)?;
            if was_sampled {
                trace.push(
                    Rule::Compaction,
                    format!("stacked samplers on `{alias}` compact (Prop 8)"),
                    &gus,
                );
            }
            let tree = GusTree::Leaf {
                gus: gus.clone(),
                rels: vec![alias.to_string()],
            };
            Ok((core, gus, tree))
        }
        LogicalPlan::Filter { predicate, input } => {
            let (core, gus, tree) = analyze(input, catalog, global, trace)?;
            trace.push(
                Rule::SelectionCommute,
                format!("σ[{predicate}] commutes with GUS unchanged"),
                &gus,
            );
            Ok((
                LogicalPlan::Filter {
                    predicate: predicate.clone(),
                    input: Box::new(core),
                },
                gus,
                tree,
            ))
        }
        LogicalPlan::Join {
            condition,
            left,
            right,
        } => {
            let (core_l, gus_l, tree_l) = analyze(left, catalog, global, trace)?;
            let (core_r, gus_r, tree_r) = analyze(right, catalog, global, trace)?;
            if !gus_l.support().is_disjoint(gus_r.support()) {
                // Unreachable after alias validation, but kept as defense.
                return Err(PlanError::Core(sa_core::CoreError::LineageOverlap {
                    name: "join operands share sampled lineage".into(),
                }));
            }
            let gus = gus_l.compact(&gus_r)?;
            trace.push(
                Rule::JoinCommute,
                format!(
                    "join merges G(a₁={:.3e}) and G(a₂={:.3e}) → a={:.3e}",
                    gus_l.a(),
                    gus_r.a(),
                    gus.a()
                ),
                &gus,
            );
            // Union-free operands collapse into one leaf (compaction is
            // associative); a union on either side must stay structural so
            // per-branch prefix factors can attach below the join.
            let tree = match (tree_l, tree_r) {
                (GusTree::Leaf { rels: rl, .. }, GusTree::Leaf { rels: rr, .. }) => GusTree::Leaf {
                    gus: gus.clone(),
                    rels: rl.into_iter().chain(rr).collect(),
                },
                (l, r) => GusTree::Join {
                    left: Box::new(l),
                    right: Box::new(r),
                },
            };
            Ok((
                LogicalPlan::Join {
                    condition: condition.clone(),
                    left: Box::new(core_l),
                    right: Box::new(core_r),
                },
                gus,
                tree,
            ))
        }
        LogicalPlan::Project { exprs, input } => {
            let (core, gus, tree) = analyze(input, catalog, global, trace)?;
            Ok((
                LogicalPlan::Project {
                    exprs: exprs.clone(),
                    input: Box::new(core),
                },
                gus,
                tree,
            ))
        }
        LogicalPlan::Aggregate { aggs, input } => {
            let (core, gus, tree) = analyze(input, catalog, global, trace)?;
            Ok((
                LogicalPlan::Aggregate {
                    aggs: aggs.clone(),
                    input: Box::new(core),
                },
                gus,
                tree,
            ))
        }
        LogicalPlan::UnionSamples { left, right } => {
            let (core_l, gus_l, tree_l) = analyze(left, catalog, global, trace)?;
            let (_core_r, gus_r, tree_r) = analyze(right, catalog, global, trace)?;
            // validate() guarantees both branches strip to the same core.
            let gus = gus_l.union(&gus_r)?;
            trace.push(
                Rule::UnionSamples,
                format!(
                    "union of independent samples merges G(a₁={:.3e}) ∪ G(a₂={:.3e}) → a={:.3e}",
                    gus_l.a(),
                    gus_r.a(),
                    gus.a()
                ),
                &gus,
            );
            let tree = GusTree::Union {
                left: Box::new(tree_l),
                right: Box::new(tree_r),
            };
            Ok((core_l, gus, tree))
        }
    }
}

/// The `(alias, table)` of the base relation under a Sample*/Scan chain.
fn base_of(mut node: &LogicalPlan) -> Result<(&str, &str)> {
    loop {
        match node {
            LogicalPlan::Scan { table, alias } => return Ok((alias, table)),
            LogicalPlan::Sample { input, .. } => node = input,
            other => {
                return Err(PlanError::SampleNotOnBaseRelation {
                    subtree: other.node_label(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::AggSpec;
    use sa_expr::{col, lit};
    use sa_storage::{DataType, Field, Schema, TableBuilder, Value};

    /// Catalog with the paper's cardinalities: orders has 150 000 rows (so
    /// WOR(1000) reproduces Example 2's numbers); others small.
    fn paper_catalog() -> Catalog {
        let mut c = Catalog::new();
        for (name, key, rows) in [
            ("lineitem", "l_orderkey", 600u64),
            ("orders", "o_orderkey", 150_000),
            ("customer", "c_custkey", 100),
            ("part", "p_partkey", 100),
        ] {
            let schema = Schema::new(vec![
                Field::new(key, DataType::Int),
                Field::new("v", DataType::Float),
            ])
            .unwrap();
            let mut b = TableBuilder::new(name, schema);
            b.reserve(rows as usize);
            for i in 0..rows {
                b.push_row(&[Value::Int(i as i64), Value::Float(1.0)])
                    .unwrap();
            }
            c.register(b.finish().unwrap()).unwrap();
        }
        c
    }

    fn query1() -> LogicalPlan {
        LogicalPlan::scan("lineitem")
            .sample(SamplingMethod::Bernoulli { p: 0.1 })
            .join_on(
                LogicalPlan::scan("orders").sample(SamplingMethod::Wor { size: 1000 }),
                col("l_orderkey").eq(col("o_orderkey")),
            )
            .aggregate(vec![AggSpec::sum(col("lineitem.v"), "s")])
    }

    #[test]
    fn query1_reproduces_example3_coefficients() {
        // Figure 2 / Example 3 gold numbers.
        let analysis = rewrite(&query1(), &paper_catalog()).unwrap();
        let g = &analysis.gus;
        let b = |names: &[&str]| g.b_named(names).unwrap();
        assert!((g.a() - 6.667e-4).abs() < 1e-7);
        assert!((b(&[]) - 4.44e-7).abs() < 5e-10);
        assert!((b(&["orders"]) - 6.667e-5).abs() < 5e-8);
        assert!((b(&["lineitem"]) - 4.44e-6).abs() < 5e-9);
        assert!((b(&["lineitem", "orders"]) - 6.667e-4).abs() < 1e-7);
        assert!(g.is_proper());
    }

    #[test]
    fn query1_core_plan_has_no_samples() {
        let analysis = rewrite(&query1(), &paper_catalog()).unwrap();
        fn has_sample(p: &LogicalPlan) -> bool {
            match p {
                LogicalPlan::Sample { .. } => true,
                LogicalPlan::Scan { .. } => false,
                LogicalPlan::Filter { input, .. }
                | LogicalPlan::Project { input, .. }
                | LogicalPlan::Aggregate { input, .. } => has_sample(input),
                LogicalPlan::Join { left, right, .. }
                | LogicalPlan::UnionSamples { left, right } => {
                    has_sample(left) || has_sample(right)
                }
            }
        }
        assert!(!has_sample(&analysis.core));
        // Aggregate is preserved at the root.
        assert!(matches!(analysis.core, LogicalPlan::Aggregate { .. }));
    }

    #[test]
    fn figure4_four_relation_plan() {
        // Example 4: ((B0.1(l) ⋈ W1000(o)) ⋈ c) ⋈ B0.5(p).
        let plan = LogicalPlan::scan("lineitem")
            .sample(SamplingMethod::Bernoulli { p: 0.1 })
            .join_on(
                LogicalPlan::scan("orders").sample(SamplingMethod::Wor { size: 1000 }),
                col("l_orderkey").eq(col("o_orderkey")),
            )
            .join_on(LogicalPlan::scan("customer"), lit(true))
            .join_on(
                LogicalPlan::scan("part").sample(SamplingMethod::Bernoulli { p: 0.5 }),
                lit(true),
            )
            .aggregate(vec![AggSpec::sum(col("lineitem.v"), "s")]);
        let analysis = rewrite(&plan, &paper_catalog()).unwrap();
        let g = &analysis.gus;
        let b = |names: &[&str]| g.b_named(names).unwrap();
        // Figure 4's G(a₁₂₃) table (paper prints 4 significant digits).
        assert!((g.a() - 3.334e-4).abs() < 1e-7);
        assert!((b(&[]) - 1.11e-7).abs() < 1e-9);
        assert!((b(&["part"]) - 2.22e-7).abs() < 2e-9);
        assert!((b(&["customer"]) - 1.11e-7).abs() < 1e-9);
        assert!((b(&["customer", "part"]) - 2.22e-7).abs() < 2e-9);
        assert!((b(&["orders"]) - 1.667e-5).abs() < 2e-8);
        assert!((b(&["orders", "part"]) - 3.335e-5).abs() < 4e-8);
        assert!((b(&["orders", "customer"]) - 1.667e-5).abs() < 2e-8);
        assert!((b(&["orders", "customer", "part"]) - 3.335e-5).abs() < 4e-8);
        assert!((b(&["lineitem"]) - 1.11e-6).abs() < 2e-9);
        assert!((b(&["lineitem", "part"]) - 2.22e-6).abs() < 4e-9);
        assert!((b(&["lineitem", "customer"]) - 1.11e-6).abs() < 2e-9);
        assert!((b(&["lineitem", "customer", "part"]) - 2.22e-6).abs() < 4e-9);
        assert!((b(&["lineitem", "orders"]) - 1.667e-4).abs() < 2e-7);
        assert!((b(&["lineitem", "orders", "part"]) - 3.334e-4).abs() < 4e-7);
        assert!((b(&["lineitem", "orders", "customer"]) - 1.667e-4).abs() < 2e-7);
        assert!((b(&["lineitem", "orders", "customer", "part"]) - 3.334e-4).abs() < 4e-7);
        assert!(g.is_proper());
    }

    #[test]
    fn unsampled_plan_gets_identity_gus() {
        let plan = LogicalPlan::scan("lineitem")
            .join_on(
                LogicalPlan::scan("orders"),
                col("l_orderkey").eq(col("o_orderkey")),
            )
            .aggregate(vec![AggSpec::count_star("c")]);
        let analysis = rewrite(&plan, &paper_catalog()).unwrap();
        assert!((analysis.gus.a() - 1.0).abs() < 1e-12);
        assert!(analysis.gus.support().is_empty());
    }

    #[test]
    fn stacked_bernoulli_compacts() {
        let plan = LogicalPlan::scan("lineitem")
            .sample(SamplingMethod::Bernoulli { p: 0.4 })
            .sample(SamplingMethod::Bernoulli { p: 0.5 })
            .aggregate(vec![AggSpec::count_star("c")]);
        let analysis = rewrite(&plan, &paper_catalog()).unwrap();
        assert!((analysis.gus.a() - 0.2).abs() < 1e-12);
        assert!((analysis.gus.b_named::<&str>(&[]).unwrap() - 0.04).abs() < 1e-12);
        assert!(analysis
            .trace
            .steps
            .iter()
            .any(|s| s.rule == Rule::Compaction));
    }

    #[test]
    fn selection_does_not_change_gus() {
        let plan = LogicalPlan::scan("lineitem")
            .sample(SamplingMethod::Bernoulli { p: 0.3 })
            .filter(col("v").gt(lit(0.5)))
            .aggregate(vec![AggSpec::sum(col("v"), "s")]);
        let analysis = rewrite(&plan, &paper_catalog()).unwrap();
        let direct = GusParams::bernoulli("lineitem", 0.3).unwrap();
        assert!((analysis.gus.a() - direct.a()).abs() < 1e-12);
        assert!(analysis
            .trace
            .steps
            .iter()
            .any(|s| s.rule == Rule::SelectionCommute));
    }

    #[test]
    fn system_sampling_uses_block_lineage() {
        let plan = LogicalPlan::scan("lineitem")
            .sample(SamplingMethod::System { p: 0.25 })
            .aggregate(vec![AggSpec::count_star("c")]);
        let analysis = rewrite(&plan, &paper_catalog()).unwrap();
        assert_eq!(analysis.lineage_units, vec![LineageUnit::Block]);
        assert!((analysis.gus.a() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn system_stacked_with_row_sampler_rejected() {
        let plan = LogicalPlan::scan("lineitem")
            .sample(SamplingMethod::System { p: 0.25 })
            .sample(SamplingMethod::Bernoulli { p: 0.5 })
            .aggregate(vec![AggSpec::count_star("c")]);
        assert!(matches!(
            rewrite(&plan, &paper_catalog()),
            Err(PlanError::Malformed(_))
        ));
    }

    #[test]
    fn with_replacement_not_analyzable() {
        let plan = LogicalPlan::scan("lineitem")
            .sample(SamplingMethod::WithReplacement { size: 10 })
            .aggregate(vec![AggSpec::count_star("c")]);
        assert!(matches!(
            rewrite(&plan, &paper_catalog()),
            Err(PlanError::Sampling(
                sa_sampling::SamplingError::NotGus { .. }
            ))
        ));
    }

    #[test]
    fn trace_records_all_rules_for_query1() {
        let analysis = rewrite(&query1(), &paper_catalog()).unwrap();
        let rules: Vec<Rule> = analysis.trace.steps.iter().map(|s| s.rule).collect();
        assert!(rules.contains(&Rule::TranslateSampling));
        assert!(rules.contains(&Rule::JoinCommute));
        let rendered = analysis.trace.render();
        assert!(rendered.contains("B0.1"), "{rendered}");
        assert!(rendered.contains("WOR1000"), "{rendered}");
    }

    #[test]
    fn gus_table_renders_all_subsets() {
        let analysis = rewrite(&query1(), &paper_catalog()).unwrap();
        let table = analysis.gus_table();
        assert!(table.contains("a = 6.6"), "{table}");
        assert!(table.contains("b{lineitem,orders}"), "{table}");
        // 2 relations -> 4 b-rows + a row.
        assert_eq!(table.lines().count(), 5);
    }

    #[test]
    fn rewriter_scales_to_ten_relations() {
        // The paper's claim: "this process need not take more than a few
        // milliseconds even for plans involving 10 relations".
        let mut c = Catalog::new();
        let schema = Schema::new(vec![Field::new("k", DataType::Int)]).unwrap();
        for i in 0..10 {
            let mut b = TableBuilder::new(format!("r{i}"), schema.clone());
            for j in 0..100 {
                b.push_row(&[Value::Int(j)]).unwrap();
            }
            c.register(b.finish().unwrap()).unwrap();
        }
        let mut plan = LogicalPlan::scan("r0").sample(SamplingMethod::Bernoulli { p: 0.5 });
        for i in 1..10 {
            plan = plan.join_on(
                LogicalPlan::scan(format!("r{i}")).sample(SamplingMethod::Bernoulli { p: 0.5 }),
                lit(true),
            );
        }
        let plan = plan.aggregate(vec![AggSpec::count_star("c")]);
        let t0 = std::time::Instant::now();
        let analysis = rewrite(&plan, &c).unwrap();
        let elapsed = t0.elapsed();
        assert_eq!(analysis.schema.n(), 10);
        assert!((analysis.gus.a() - 0.5f64.powi(10)).abs() < 1e-12);
        // Generous bound (debug builds); release is far faster.
        assert!(elapsed.as_millis() < 2000, "rewrite took {elapsed:?}");
    }
}
