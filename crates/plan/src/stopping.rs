//! Stopping rules for progressive (online) estimation.
//!
//! An online aggregation loop consumes the sampled plan's result in chunks
//! and reads the estimate/CI after each one. A [`StoppingRule`] decides when
//! that loop may stop early: when the confidence interval is tight enough
//! (the `WITHIN ε PERCENT CONFIDENCE γ` clause), when a row budget is
//! exhausted, or when a wall-clock budget runs out. Rules compose by
//! union — the loop stops at the *first* criterion that fires — and the
//! stream draining is always a stop ([`StopReason::Exhausted`]).
//!
//! The rule type lives in `sa-plan` (not in the online driver) because the
//! SQL front-end lowers the accuracy clause of a query directly into it,
//! exactly like `TABLESAMPLE` lowers into a plan's sampling operators.

use std::fmt;
use std::time::Duration;

/// A relative-accuracy target: stop when the half-width of the
/// `confidence`-level interval is at most `epsilon · |estimate|`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CiTarget {
    /// Maximum relative CI half-width ε (e.g. `0.05` for "within 5%").
    pub epsilon: f64,
    /// Confidence level `1 − δ` of the interval the target is judged on
    /// (e.g. `0.95`).
    pub confidence: f64,
}

/// When a progressive estimation loop is allowed to stop.
///
/// All criteria are optional; an all-`None` rule runs the stream to
/// exhaustion (every loop stops then regardless).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StoppingRule {
    /// Stop once every aggregate's relative CI half-width is ≤ ε at the
    /// target confidence.
    pub ci_target: Option<CiTarget>,
    /// Stop after consuming at least this many result tuples.
    pub row_budget: Option<u64>,
    /// Stop after this much wall-clock time.
    pub time_budget: Option<Duration>,
}

/// Why a progressive loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The relative CI half-width target was met.
    CiConverged,
    /// The row budget was exhausted.
    RowBudget,
    /// The time budget was exhausted.
    TimeBudget,
    /// The sampled result stream drained — the estimate is now the batch
    /// estimate over the full sample.
    Exhausted,
    /// The caller cancelled the query (e.g. via a `QueryHandle`); the last
    /// snapshot is still a valid mid-stream estimate.
    Cancelled,
    /// A hard wall-clock deadline expired and the loop cancelled itself,
    /// reporting the last valid snapshot. Distinct from [`TimeBudget`]
    /// (a soft stop *rule* the caller opted into): a deadline is an upper
    /// bound imposed on the whole query, checked even when the rule never
    /// fires. The snapshot is still an unbiased scan-prefix estimate.
    ///
    /// [`TimeBudget`]: StopReason::TimeBudget
    Deadline,
    /// A fault was contained mid-run (e.g. a panicked worker shard whose
    /// pending, never-absorbed deltas were discarded) and the loop stopped
    /// with what it had. The reported snapshot covers exactly the absorbed
    /// sample prefix, so it remains a valid — merely smaller — unbiased
    /// estimate; "degraded" describes the sample size, not the statistics.
    Degraded,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StopReason::CiConverged => "ci-converged",
            StopReason::RowBudget => "row-budget",
            StopReason::TimeBudget => "time-budget",
            StopReason::Exhausted => "exhausted",
            StopReason::Cancelled => "cancelled",
            StopReason::Deadline => "deadline",
            StopReason::Degraded => "degraded",
        })
    }
}

impl StoppingRule {
    /// Run until the stream drains (no early stop).
    pub fn exhaustive() -> StoppingRule {
        StoppingRule::default()
    }

    /// Stop when the relative CI half-width is ≤ `epsilon` at `confidence`
    /// (the `WITHIN ε·100 PERCENT CONFIDENCE confidence` clause).
    pub fn ci(epsilon: f64, confidence: f64) -> StoppingRule {
        StoppingRule {
            ci_target: Some(CiTarget {
                epsilon,
                confidence,
            }),
            ..Default::default()
        }
    }

    /// Stop after `rows` consumed result tuples.
    pub fn rows(rows: u64) -> StoppingRule {
        StoppingRule {
            row_budget: Some(rows),
            ..Default::default()
        }
    }

    /// Stop after `budget` of wall-clock time.
    pub fn time(budget: Duration) -> StoppingRule {
        StoppingRule {
            time_budget: Some(budget),
            ..Default::default()
        }
    }

    /// Add a row budget to this rule.
    pub fn with_row_budget(mut self, rows: u64) -> StoppingRule {
        self.row_budget = Some(rows);
        self
    }

    /// Add a time budget to this rule.
    pub fn with_time_budget(mut self, budget: Duration) -> StoppingRule {
        self.time_budget = Some(budget);
        self
    }

    /// Add a CI target to this rule.
    pub fn with_ci_target(mut self, epsilon: f64, confidence: f64) -> StoppingRule {
        self.ci_target = Some(CiTarget {
            epsilon,
            confidence,
        });
        self
    }

    /// The confidence level snapshots should be judged at: the CI target's
    /// level if one is set, `default` otherwise.
    pub fn confidence_or(&self, default: f64) -> f64 {
        self.ci_target.map(|t| t.confidence).unwrap_or(default)
    }

    /// Decide whether to stop, given the loop's progress after a chunk.
    ///
    /// `rel_half_width` is the worst (largest) relative CI half-width across
    /// the query's aggregates at the target confidence, or `None` while the
    /// variance is not yet estimable — a CI target never fires on an
    /// inestimable interval.
    pub fn should_stop(
        &self,
        rel_half_width: Option<f64>,
        rows: u64,
        elapsed: Duration,
    ) -> Option<StopReason> {
        if let (Some(target), Some(w)) = (self.ci_target, rel_half_width) {
            if w.is_finite() && w <= target.epsilon {
                return Some(StopReason::CiConverged);
            }
        }
        if let Some(budget) = self.row_budget {
            if rows >= budget {
                return Some(StopReason::RowBudget);
            }
        }
        if let Some(budget) = self.time_budget {
            if elapsed >= budget {
                return Some(StopReason::TimeBudget);
            }
        }
        None
    }
}

impl fmt::Display for StoppingRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if let Some(t) = self.ci_target {
            parts.push(format!(
                "within {:.4}% at {:.0}% confidence",
                t.epsilon * 100.0,
                t.confidence * 100.0
            ));
        }
        if let Some(r) = self.row_budget {
            parts.push(format!("≤ {r} rows"));
        }
        if let Some(t) = self.time_budget {
            parts.push(format!("≤ {} ms", t.as_millis()));
        }
        if parts.is_empty() {
            parts.push("until exhausted".into());
        }
        f.write_str(&parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_rule_never_stops_early() {
        let r = StoppingRule::exhaustive();
        assert_eq!(
            r.should_stop(Some(0.0), u64::MAX, Duration::from_secs(3600)),
            None
        );
    }

    #[test]
    fn ci_target_fires_only_on_estimable_tight_intervals() {
        let r = StoppingRule::ci(0.05, 0.95);
        assert_eq!(r.should_stop(None, 10, Duration::ZERO), None);
        assert_eq!(r.should_stop(Some(0.2), 10, Duration::ZERO), None);
        assert_eq!(r.should_stop(Some(f64::INFINITY), 10, Duration::ZERO), None);
        assert_eq!(
            r.should_stop(Some(0.04), 10, Duration::ZERO),
            Some(StopReason::CiConverged)
        );
    }

    #[test]
    fn budgets_fire_independently() {
        let r = StoppingRule::rows(100).with_time_budget(Duration::from_millis(50));
        assert_eq!(r.should_stop(None, 99, Duration::ZERO), None);
        assert_eq!(
            r.should_stop(None, 100, Duration::ZERO),
            Some(StopReason::RowBudget)
        );
        assert_eq!(
            r.should_stop(None, 0, Duration::from_millis(50)),
            Some(StopReason::TimeBudget)
        );
    }

    #[test]
    fn ci_takes_priority_over_budgets() {
        let r = StoppingRule::ci(0.1, 0.9).with_row_budget(10);
        assert_eq!(
            r.should_stop(Some(0.05), 10, Duration::ZERO),
            Some(StopReason::CiConverged)
        );
    }

    #[test]
    fn display_renders_every_part() {
        let r = StoppingRule::ci(0.05, 0.95)
            .with_row_budget(1000)
            .with_time_budget(Duration::from_millis(250));
        let s = r.to_string();
        assert!(s.contains("5.0000%"), "{s}");
        assert!(s.contains("1000 rows"), "{s}");
        assert!(s.contains("250 ms"), "{s}");
        assert_eq!(StoppingRule::exhaustive().to_string(), "until exhausted");
    }

    #[test]
    fn confidence_or_prefers_target_level() {
        assert_eq!(StoppingRule::ci(0.1, 0.99).confidence_or(0.95), 0.99);
        assert_eq!(StoppingRule::rows(5).confidence_or(0.95), 0.95);
    }
}
