//! # sa-plan — logical plans and the SOA-equivalence rewriter
//!
//! [`LogicalPlan`] is the query tree the user writes: scans, `TABLESAMPLE`
//! operators, filters, joins, projections and one root aggregate.
//! [`rewrite()`] derives, without changing what executes, the SOA-equivalent
//! form with a *single* GUS quasi-operator at the top (Section 4 of the
//! paper) — the parameters the SBox estimator needs — together with a
//! [`RewriteTrace`] that reproduces the paper's Figure 2/4 walk-throughs.

#![warn(missing_docs)]

pub mod columns;
pub mod error;
pub mod plan;
pub mod rewrite;
pub mod stopping;

pub use columns::{ScanCols, ScanColumnMap};
pub use error::PlanError;
pub use plan::{AggFunc, AggSpec, LogicalPlan};
pub use rewrite::{
    render_gus_table, rewrite, GusTree, RewriteStep, RewriteTrace, Rule, SoaAnalysis,
};
pub use stopping::{CiTarget, StopReason, StoppingRule};

/// Crate-wide result alias.
pub type Result<T, E = PlanError> = std::result::Result<T, E>;
