//! Error type for plan construction and SOA rewriting.

use std::fmt;

/// Errors from building, validating or rewriting logical plans.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// Propagated GUS/estimator error.
    Core(sa_core::CoreError),
    /// Propagated sampling error.
    Sampling(sa_sampling::SamplingError),
    /// Propagated expression error.
    Expr(sa_expr::ExprError),
    /// Propagated storage error.
    Storage(sa_storage::StorageError),
    /// The same base-relation alias appears twice — a self-join, which
    /// Proposition 6 excludes (Section 9 "Dealing with Self-Joins").
    DuplicateAlias {
        /// The repeated alias.
        alias: String,
    },
    /// A sampling operator applied to something other than a base relation
    /// (or a stack of samples over one). Sampling of derived results is not
    /// a GUS over base lineage and is rejected at analysis time.
    SampleNotOnBaseRelation {
        /// Rendering of the offending subtree.
        subtree: String,
    },
    /// A cardinality-dependent method (WOR) stacked above another sampler:
    /// its parameters would depend on a random intermediate cardinality.
    WorOverRandomInput,
    /// Malformed plan shape (e.g. aggregate below a join).
    Malformed(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Core(e) => write!(f, "{e}"),
            PlanError::Sampling(e) => write!(f, "{e}"),
            PlanError::Expr(e) => write!(f, "{e}"),
            PlanError::Storage(e) => write!(f, "{e}"),
            PlanError::DuplicateAlias { alias } => write!(
                f,
                "base relation alias `{alias}` used twice: self-joins are outside the GUS \
                 algebra (Proposition 6 requires disjoint lineage); alias one side"
            ),
            PlanError::SampleNotOnBaseRelation { subtree } => write!(
                f,
                "sampling operator applied to a derived relation ({subtree}); GUS sampling \
                 operators must sit on base relations"
            ),
            PlanError::WorOverRandomInput => write!(
                f,
                "fixed-size WOR sampling stacked above another sampler: its inclusion \
                 probabilities would depend on a random cardinality"
            ),
            PlanError::Malformed(msg) => write!(f, "malformed plan: {msg}"),
        }
    }
}

impl std::error::Error for PlanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanError::Core(e) => Some(e),
            PlanError::Sampling(e) => Some(e),
            PlanError::Expr(e) => Some(e),
            PlanError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sa_core::CoreError> for PlanError {
    fn from(e: sa_core::CoreError) -> Self {
        PlanError::Core(e)
    }
}
impl From<sa_sampling::SamplingError> for PlanError {
    fn from(e: sa_sampling::SamplingError) -> Self {
        PlanError::Sampling(e)
    }
}
impl From<sa_expr::ExprError> for PlanError {
    fn from(e: sa_expr::ExprError) -> Self {
        PlanError::Expr(e)
    }
}
impl From<sa_storage::StorageError> for PlanError {
    fn from(e: sa_storage::StorageError) -> Self {
        PlanError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_join_message_mentions_aliasing() {
        let e = PlanError::DuplicateAlias { alias: "l".into() };
        assert!(e.to_string().contains("alias"));
        assert!(e.to_string().contains("self-join"));
    }

    #[test]
    fn conversions() {
        let e: PlanError = sa_core::CoreError::InvalidParam("x".into()).into();
        assert!(matches!(e, PlanError::Core(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
