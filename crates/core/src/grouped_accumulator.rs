//! Per-group incremental moment accumulation — the state behind grouped
//! online aggregation.
//!
//! The paper's GUS algebra makes every group of a `GROUP BY` query just
//! another SUM-like aggregate: the group's indicator folds into `f(·)`
//! (`f_g(t) = f(t)·1{key(t) = g}`, a selection by Proposition 5), so the
//! *same* top GUS analyzes every group and each group gets its own unbiased
//! estimate and variance. [`GroupedMomentAccumulator`] materializes exactly
//! that view: a hash map from group key to an independent incremental
//! [`MomentAccumulator`], so after any prefix of the sampled stream every
//! discovered group's estimate/variance/CI is an **O(1)-in-rows readout**
//! (`O(2ⁿ k²)` per group, nothing recomputed from scratch).
//!
//! Like its scalar building block, the grouped accumulator is
//! **merge-able** ([`GroupedMomentAccumulator::merge`]): shards can consume
//! disjoint chunk ranges and be combined associatively — groups present in
//! both shards merge through the same rank-two delta, groups unique to one
//! shard are adopted wholesale. Fed any chunk split (and merged in any
//! shape), the per-group moments equal a single batch pass over the same
//! rows, up to float associativity — the property `tests/proptests.rs` pins
//! against the batch grouped driver.
//!
//! The key type is generic (`K: Eq + Hash`): the online driver uses the
//! evaluated `GROUP BY` key tuple, tests use integers. Per-relation
//! fingerprint salts are derived deterministically ([`crate::hash::rel_salts`]),
//! so independently created shard accumulators merge exactly.

use std::hash::Hash;

use crate::accumulator::MomentAccumulator;
use crate::error::CoreError;
use crate::estimator::EstimateReport;
use crate::hash::FxHashMap;
use crate::params::GusParams;
use crate::Result;

/// A map of group key → incremental [`MomentAccumulator`], with push, shard
/// merge, and O(1)-in-rows per-group readout.
#[derive(Debug, Clone)]
pub struct GroupedMomentAccumulator<K> {
    n: usize,
    dims: usize,
    groups: FxHashMap<K, MomentAccumulator>,
    count: u64,
}

impl<K: Eq + Hash> GroupedMomentAccumulator<K> {
    /// An accumulator over `n` base relations and `dims` aggregate
    /// dimensions per group.
    pub fn new(n: usize, dims: usize) -> GroupedMomentAccumulator<K> {
        assert!(dims >= 1, "at least one aggregate dimension required");
        GroupedMomentAccumulator {
            n,
            dims,
            groups: FxHashMap::default(),
            count: 0,
        }
    }

    /// Number of base relations.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Aggregate dimension `k` of every group.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Total rows consumed across all groups (and merged shards).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of groups discovered so far.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// True when no row has been consumed yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Consume one result tuple of group `key`: its per-base-relation
    /// lineage ids and its aggregate vector.
    pub fn push(&mut self, key: K, lineage: &[u64], f: &[f64]) -> Result<()> {
        // Validate before touching the map, so a bad push cannot leave an
        // empty phantom group behind.
        if lineage.len() != self.n {
            return Err(CoreError::DimensionMismatch {
                expected: self.n,
                got: lineage.len(),
            });
        }
        if f.len() != self.dims {
            return Err(CoreError::DimensionMismatch {
                expected: self.dims,
                got: f.len(),
            });
        }
        let (n, dims) = (self.n, self.dims);
        self.groups
            .entry(key)
            .or_insert_with(|| MomentAccumulator::new(n, dims))
            .push(lineage, f)?;
        self.count += 1;
        Ok(())
    }

    /// Scalar convenience for `dims == 1`.
    pub fn push_scalar(&mut self, key: K, lineage: &[u64], f: f64) -> Result<()> {
        self.push(key, lineage, &[f])
    }

    /// The accumulator of one group, if discovered.
    pub fn group(&self, key: &K) -> Option<&MomentAccumulator> {
        self.groups.get(key)
    }

    /// Iterate over `(key, accumulator)` pairs, in hash order — sort the
    /// keys for deterministic output.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &MomentAccumulator)> {
        self.groups.iter()
    }

    /// Iterate over the discovered group keys, in hash order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.groups.keys()
    }

    /// The full [`EstimateReport`] of one group under `gus` — the O(1)
    /// per-group readout (`None` for an undiscovered group: a group with no
    /// sampled tuple has estimate 0 and no estimable variance, the honest
    /// classical caveat of sampling-based GROUP BY).
    pub fn report_group(&self, key: &K, gus: &GusParams) -> Option<Result<EstimateReport>> {
        self.groups.get(key).map(|acc| acc.report(gus))
    }

    /// Absorb another grouped accumulator over the same schema — the shard
    /// merge. Groups shared by both shards combine exactly (same fingerprint
    /// salts, same rank-two delta); groups unique to `other` are copied.
    /// Cost: `O(groups in other × their lineage groups)`, never `O(rows)`.
    pub fn merge(&mut self, other: &GroupedMomentAccumulator<K>) -> Result<()>
    where
        K: Clone,
    {
        if other.n != self.n {
            return Err(CoreError::DimensionMismatch {
                expected: self.n,
                got: other.n,
            });
        }
        if other.dims != self.dims {
            return Err(CoreError::DimensionMismatch {
                expected: self.dims,
                got: other.dims,
            });
        }
        let (n, dims) = (self.n, self.dims);
        for (key, acc) in &other.groups {
            self.groups
                .entry(key.clone())
                .or_insert_with(|| MomentAccumulator::new(n, dims))
                .merge(acc)?;
        }
        self.count += other.count;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::GroupedMoments;
    use crate::relset::RelSet;

    /// rows: (group, lineage over 1 relation, f).
    fn sample_rows() -> Vec<(u32, [u64; 1], f64)> {
        vec![
            (0, [1], 2.0),
            (1, [2], 3.0),
            (0, [3], 5.0),
            (1, [1], 7.0),
            (2, [4], 11.0),
            (0, [1], 13.0),
        ]
    }

    fn batch_for_group(rows: &[(u32, [u64; 1], f64)], g: u32) -> crate::moments::Moments {
        let mut acc = GroupedMoments::new(1, 1);
        for (key, lin, f) in rows {
            if *key == g {
                acc.push_scalar(lin, *f).unwrap();
            }
        }
        acc.finish()
    }

    #[test]
    fn per_group_moments_match_independent_batch_passes() {
        let rows = sample_rows();
        let mut acc: GroupedMomentAccumulator<u32> = GroupedMomentAccumulator::new(1, 1);
        for (key, lin, f) in &rows {
            acc.push_scalar(*key, lin, *f).unwrap();
        }
        assert_eq!(acc.group_count(), 3);
        assert_eq!(acc.count(), rows.len() as u64);
        for g in 0..3u32 {
            let m = acc.group(&g).unwrap().snapshot();
            let b = batch_for_group(&rows, g);
            assert_eq!(m.count, b.count);
            for s in 0..2u32 {
                let (x, y) = (
                    m.y_scalar(RelSet::from_bits(s)),
                    b.y_scalar(RelSet::from_bits(s)),
                );
                assert!((x - y).abs() < 1e-12, "group {g} y[{s}]: {x} vs {y}");
            }
        }
    }

    #[test]
    fn shard_merge_matches_single_pass_at_every_split() {
        let rows = sample_rows();
        let single = {
            let mut acc: GroupedMomentAccumulator<u32> = GroupedMomentAccumulator::new(1, 1);
            for (key, lin, f) in &rows {
                acc.push_scalar(*key, lin, *f).unwrap();
            }
            acc
        };
        for split in 0..=rows.len() {
            let mut left: GroupedMomentAccumulator<u32> = GroupedMomentAccumulator::new(1, 1);
            for (key, lin, f) in &rows[..split] {
                left.push_scalar(*key, lin, *f).unwrap();
            }
            let mut right: GroupedMomentAccumulator<u32> = GroupedMomentAccumulator::new(1, 1);
            for (key, lin, f) in &rows[split..] {
                right.push_scalar(*key, lin, *f).unwrap();
            }
            left.merge(&right).unwrap();
            assert_eq!(left.count(), single.count());
            assert_eq!(left.group_count(), single.group_count());
            for g in 0..3u32 {
                let (m, s) = (
                    left.group(&g).unwrap().snapshot(),
                    single.group(&g).unwrap().snapshot(),
                );
                for bits in 0..2u32 {
                    let (x, y) = (
                        m.y_scalar(RelSet::from_bits(bits)),
                        s.y_scalar(RelSet::from_bits(bits)),
                    );
                    assert!((x - y).abs() < 1e-12, "split {split} group {g}: {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn merge_links_lineage_groups_across_shards() {
        // Same group key AND same lineage id split across shards must fold
        // into one lineage group: y = (1+2)² = 9, not 1² + 2² = 5.
        let mut a: GroupedMomentAccumulator<&str> = GroupedMomentAccumulator::new(1, 1);
        a.push_scalar("g", &[7], 1.0).unwrap();
        let mut b: GroupedMomentAccumulator<&str> = GroupedMomentAccumulator::new(1, 1);
        b.push_scalar("g", &[7], 2.0).unwrap();
        a.merge(&b).unwrap();
        let m = a.group(&"g").unwrap().snapshot();
        assert!((m.y_scalar(RelSet::singleton(0)) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn report_group_reads_out_mid_stream() {
        let gus = GusParams::bernoulli("r", 0.5).unwrap();
        let mut acc: GroupedMomentAccumulator<u32> = GroupedMomentAccumulator::new(1, 1);
        acc.push_scalar(0, &[1], 3.0).unwrap();
        acc.push_scalar(1, &[2], 5.0).unwrap();
        let r0 = acc.report_group(&0, &gus).unwrap().unwrap();
        assert!((r0.estimate[0] - 6.0).abs() < 1e-12);
        let r1 = acc.report_group(&1, &gus).unwrap().unwrap();
        assert!((r1.estimate[0] - 10.0).abs() < 1e-12);
        assert!(acc.report_group(&9, &gus).is_none());
    }

    #[test]
    fn bad_pushes_leave_no_phantom_group() {
        let mut acc: GroupedMomentAccumulator<u32> = GroupedMomentAccumulator::new(2, 1);
        assert!(acc.push_scalar(0, &[1], 1.0).is_err()); // lineage arity
        assert!(acc.push(0, &[1, 2], &[1.0, 2.0]).is_err()); // dims
        assert_eq!(acc.group_count(), 0);
        assert_eq!(acc.count(), 0);
        assert!(acc.is_empty());
    }

    #[test]
    fn merge_schema_mismatches_rejected() {
        let mut acc: GroupedMomentAccumulator<u32> = GroupedMomentAccumulator::new(2, 1);
        assert!(acc
            .merge(&GroupedMomentAccumulator::<u32>::new(1, 1))
            .is_err());
        assert!(acc
            .merge(&GroupedMomentAccumulator::<u32>::new(2, 2))
            .is_err());
    }
}
