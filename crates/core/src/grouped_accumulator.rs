//! Per-group incremental moment accumulation — the state behind grouped
//! online aggregation.
//!
//! The paper's GUS algebra makes every group of a `GROUP BY` query just
//! another SUM-like aggregate: the group's indicator folds into `f(·)`
//! (`f_g(t) = f(t)·1{key(t) = g}`, a selection by Proposition 5), so the
//! *same* top GUS analyzes every group and each group gets its own unbiased
//! estimate and variance. [`GroupedMomentAccumulator`] materializes exactly
//! that view: a hash map from group key to an independent incremental
//! [`MomentAccumulator`], so after any prefix of the sampled stream every
//! discovered group's estimate/variance/CI is an **O(1)-in-rows readout**
//! (`O(2ⁿ k²)` per group, nothing recomputed from scratch).
//!
//! Like its scalar building block, the grouped accumulator is
//! **merge-able** ([`GroupedMomentAccumulator::merge`]): shards can consume
//! disjoint chunk ranges and be combined associatively — groups present in
//! both shards merge through the same rank-two delta, groups unique to one
//! shard are adopted wholesale. Fed any chunk split (and merged in any
//! shape), the per-group moments equal a single batch pass over the same
//! rows, up to float associativity — the property `tests/proptests.rs` pins
//! against the batch grouped driver.
//!
//! The key type is generic (`K: Eq + Hash`): the online driver uses the
//! evaluated `GROUP BY` key tuple, tests use integers. Per-relation
//! fingerprint salts are derived deterministically ([`crate::hash::rel_salts`]),
//! so independently created shard accumulators merge exactly.

use std::hash::Hash;

use crate::accumulator::MomentAccumulator;
use crate::error::CoreError;
use crate::estimator::EstimateReport;
use crate::hash::FpMap;
use crate::params::GusParams;
use crate::Result;

/// A map of group key → incremental [`MomentAccumulator`], with push, shard
/// merge, and O(1)-in-rows per-group readout.
///
/// Groups live in an [`FpMap`]: keyed by a 64-bit fingerprint of the key
/// (one cheap hash instead of cloning/boxing key tuples through a generic
/// map) with stored-key collision resolution, so a fingerprint collision
/// costs an equality check, never correctness.
/// [`GroupedMomentAccumulator::push_batch`] feeds one group a whole chunk
/// partition at a time, landing in the scalar accumulator's amortized
/// batch path.
#[derive(Debug, Clone)]
pub struct GroupedMomentAccumulator<K> {
    n: usize,
    dims: usize,
    groups: FpMap<K, MomentAccumulator>,
    count: u64,
}

impl<K: Eq + Hash> GroupedMomentAccumulator<K> {
    /// An accumulator over `n` base relations and `dims` aggregate
    /// dimensions per group.
    pub fn new(n: usize, dims: usize) -> GroupedMomentAccumulator<K> {
        assert!(dims >= 1, "at least one aggregate dimension required");
        GroupedMomentAccumulator {
            n,
            dims,
            groups: FpMap::new(),
            count: 0,
        }
    }

    /// The accumulator slot of `key`, created on first touch.
    fn slot(&mut self, key: K) -> &mut MomentAccumulator {
        let (n, dims) = (self.n, self.dims);
        self.groups
            .get_or_insert_with(key, || MomentAccumulator::new(n, dims))
    }

    /// Number of base relations.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Aggregate dimension `k` of every group.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Total rows consumed across all groups (and merged shards).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of groups discovered so far.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// True when no row has been consumed yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Consume one result tuple of group `key`: its per-base-relation
    /// lineage ids and its aggregate vector.
    pub fn push(&mut self, key: K, lineage: &[u64], f: &[f64]) -> Result<()> {
        // Validate before touching the map, so a bad push cannot leave an
        // empty phantom group behind.
        if lineage.len() != self.n {
            return Err(CoreError::DimensionMismatch {
                expected: self.n,
                got: lineage.len(),
            });
        }
        if f.len() != self.dims {
            return Err(CoreError::DimensionMismatch {
                expected: self.dims,
                got: f.len(),
            });
        }
        self.slot(key).push(lineage, f)?;
        self.count += 1;
        Ok(())
    }

    /// Scalar convenience for `dims == 1`.
    pub fn push_scalar(&mut self, key: K, lineage: &[u64], f: f64) -> Result<()> {
        self.push(key, lineage, &[f])
    }

    /// Consume a whole chunk partition of one group: `lineage` holds one id
    /// column per base relation, `f` one value column per dimension (see
    /// [`MomentAccumulator::push_batch`]). The grouped online driver
    /// partitions each chunk by key once and lands every partition here —
    /// the key is hashed (and, for a new group, stored) once per partition
    /// instead of once per row.
    pub fn push_batch(&mut self, key: K, lineage: &[&[u64]], f: &[&[f64]]) -> Result<()> {
        // Validate before touching the map, so a bad push cannot leave an
        // empty phantom group behind.
        if lineage.len() != self.n {
            return Err(CoreError::DimensionMismatch {
                expected: self.n,
                got: lineage.len(),
            });
        }
        if f.len() != self.dims {
            return Err(CoreError::DimensionMismatch {
                expected: self.dims,
                got: f.len(),
            });
        }
        let rows = f
            .first()
            .map(|c| c.len())
            .or_else(|| lineage.first().map(|c| c.len()))
            .unwrap_or(0);
        for len in lineage
            .iter()
            .map(|c| c.len())
            .chain(f.iter().map(|c| c.len()))
        {
            if len != rows {
                return Err(CoreError::DimensionMismatch {
                    expected: rows,
                    got: len,
                });
            }
        }
        if rows == 0 {
            return Ok(());
        }
        self.slot(key).push_batch(lineage, f)?;
        self.count += rows as u64;
        Ok(())
    }

    /// The accumulator of one group, if discovered.
    pub fn group(&self, key: &K) -> Option<&MomentAccumulator> {
        self.groups.get(key)
    }

    /// Iterate over `(key, accumulator)` pairs, in hash order — sort the
    /// keys for deterministic output.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &MomentAccumulator)> {
        self.groups.iter()
    }

    /// Iterate over the discovered group keys, in hash order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.iter().map(|(k, _)| k)
    }

    /// The full [`EstimateReport`] of one group under `gus` — the O(1)
    /// per-group readout (`None` for an undiscovered group: a group with no
    /// sampled tuple has estimate 0 and no estimable variance, the honest
    /// classical caveat of sampling-based GROUP BY).
    pub fn report_group(&self, key: &K, gus: &GusParams) -> Option<Result<EstimateReport>> {
        self.group(key).map(|acc| acc.report(gus))
    }

    /// Absorb another grouped accumulator over the same schema — the shard
    /// merge. Groups shared by both shards combine exactly (same fingerprint
    /// salts, same rank-two delta); groups unique to `other` are copied.
    /// Cost: `O(groups in other × their lineage groups)`, never `O(rows)`.
    pub fn merge(&mut self, other: &GroupedMomentAccumulator<K>) -> Result<()>
    where
        K: Clone,
    {
        if other.n != self.n {
            return Err(CoreError::DimensionMismatch {
                expected: self.n,
                got: other.n,
            });
        }
        if other.dims != self.dims {
            return Err(CoreError::DimensionMismatch {
                expected: self.dims,
                got: other.dims,
            });
        }
        for (key, acc) in other.groups.iter() {
            self.slot(key.clone()).merge(acc)?;
        }
        self.count += other.count;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::GroupedMoments;
    use crate::relset::RelSet;

    /// rows: (group, lineage over 1 relation, f).
    fn sample_rows() -> Vec<(u32, [u64; 1], f64)> {
        vec![
            (0, [1], 2.0),
            (1, [2], 3.0),
            (0, [3], 5.0),
            (1, [1], 7.0),
            (2, [4], 11.0),
            (0, [1], 13.0),
        ]
    }

    fn batch_for_group(rows: &[(u32, [u64; 1], f64)], g: u32) -> crate::moments::Moments {
        let mut acc = GroupedMoments::new(1, 1);
        for (key, lin, f) in rows {
            if *key == g {
                acc.push_scalar(lin, *f).unwrap();
            }
        }
        acc.finish()
    }

    #[test]
    fn per_group_moments_match_independent_batch_passes() {
        let rows = sample_rows();
        let mut acc: GroupedMomentAccumulator<u32> = GroupedMomentAccumulator::new(1, 1);
        for (key, lin, f) in &rows {
            acc.push_scalar(*key, lin, *f).unwrap();
        }
        assert_eq!(acc.group_count(), 3);
        assert_eq!(acc.count(), rows.len() as u64);
        for g in 0..3u32 {
            let m = acc.group(&g).unwrap().snapshot();
            let b = batch_for_group(&rows, g);
            assert_eq!(m.count, b.count);
            for s in 0..2u32 {
                let (x, y) = (
                    m.y_scalar(RelSet::from_bits(s)),
                    b.y_scalar(RelSet::from_bits(s)),
                );
                assert!((x - y).abs() < 1e-12, "group {g} y[{s}]: {x} vs {y}");
            }
        }
    }

    #[test]
    fn shard_merge_matches_single_pass_at_every_split() {
        let rows = sample_rows();
        let single = {
            let mut acc: GroupedMomentAccumulator<u32> = GroupedMomentAccumulator::new(1, 1);
            for (key, lin, f) in &rows {
                acc.push_scalar(*key, lin, *f).unwrap();
            }
            acc
        };
        for split in 0..=rows.len() {
            let mut left: GroupedMomentAccumulator<u32> = GroupedMomentAccumulator::new(1, 1);
            for (key, lin, f) in &rows[..split] {
                left.push_scalar(*key, lin, *f).unwrap();
            }
            let mut right: GroupedMomentAccumulator<u32> = GroupedMomentAccumulator::new(1, 1);
            for (key, lin, f) in &rows[split..] {
                right.push_scalar(*key, lin, *f).unwrap();
            }
            left.merge(&right).unwrap();
            assert_eq!(left.count(), single.count());
            assert_eq!(left.group_count(), single.group_count());
            for g in 0..3u32 {
                let (m, s) = (
                    left.group(&g).unwrap().snapshot(),
                    single.group(&g).unwrap().snapshot(),
                );
                for bits in 0..2u32 {
                    let (x, y) = (
                        m.y_scalar(RelSet::from_bits(bits)),
                        s.y_scalar(RelSet::from_bits(bits)),
                    );
                    assert!((x - y).abs() < 1e-12, "split {split} group {g}: {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn merge_links_lineage_groups_across_shards() {
        // Same group key AND same lineage id split across shards must fold
        // into one lineage group: y = (1+2)² = 9, not 1² + 2² = 5.
        let mut a: GroupedMomentAccumulator<&str> = GroupedMomentAccumulator::new(1, 1);
        a.push_scalar("g", &[7], 1.0).unwrap();
        let mut b: GroupedMomentAccumulator<&str> = GroupedMomentAccumulator::new(1, 1);
        b.push_scalar("g", &[7], 2.0).unwrap();
        a.merge(&b).unwrap();
        let m = a.group(&"g").unwrap().snapshot();
        assert!((m.y_scalar(RelSet::singleton(0)) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn report_group_reads_out_mid_stream() {
        let gus = GusParams::bernoulli("r", 0.5).unwrap();
        let mut acc: GroupedMomentAccumulator<u32> = GroupedMomentAccumulator::new(1, 1);
        acc.push_scalar(0, &[1], 3.0).unwrap();
        acc.push_scalar(1, &[2], 5.0).unwrap();
        let r0 = acc.report_group(&0, &gus).unwrap().unwrap();
        assert!((r0.estimate[0] - 6.0).abs() < 1e-12);
        let r1 = acc.report_group(&1, &gus).unwrap().unwrap();
        assert!((r1.estimate[0] - 10.0).abs() < 1e-12);
        assert!(acc.report_group(&9, &gus).is_none());
    }

    #[test]
    fn bad_pushes_leave_no_phantom_group() {
        let mut acc: GroupedMomentAccumulator<u32> = GroupedMomentAccumulator::new(2, 1);
        assert!(acc.push_scalar(0, &[1], 1.0).is_err()); // lineage arity
        assert!(acc.push(0, &[1, 2], &[1.0, 2.0]).is_err()); // dims
        assert_eq!(acc.group_count(), 0);
        assert_eq!(acc.count(), 0);
        assert!(acc.is_empty());
    }

    #[test]
    fn push_batch_matches_per_row_and_validates_first() {
        let rows = sample_rows();
        let mut per_row: GroupedMomentAccumulator<u32> = GroupedMomentAccumulator::new(1, 1);
        for (key, lin, f) in &rows {
            per_row.push_scalar(*key, lin, *f).unwrap();
        }
        // Partition the rows by group and feed each partition as one batch.
        let mut batched: GroupedMomentAccumulator<u32> = GroupedMomentAccumulator::new(1, 1);
        for g in 0..3u32 {
            let lin: Vec<u64> = rows
                .iter()
                .filter(|(k, _, _)| *k == g)
                .map(|(_, l, _)| l[0])
                .collect();
            let f: Vec<f64> = rows
                .iter()
                .filter(|(k, _, _)| *k == g)
                .map(|(_, _, f)| *f)
                .collect();
            batched.push_batch(g, &[&lin], &[&f]).unwrap();
        }
        assert_eq!(batched.count(), per_row.count());
        assert_eq!(batched.group_count(), per_row.group_count());
        for g in 0..3u32 {
            let (a, b) = (
                batched.group(&g).unwrap().snapshot(),
                per_row.group(&g).unwrap().snapshot(),
            );
            for bits in 0..2u32 {
                let (x, y) = (
                    a.y_scalar(RelSet::from_bits(bits)),
                    b.y_scalar(RelSet::from_bits(bits)),
                );
                assert!((x - y).abs() < 1e-12, "group {g}: {x} vs {y}");
            }
        }
        // Bad batches leave no phantom group (validated before the map).
        let mut acc: GroupedMomentAccumulator<u32> = GroupedMomentAccumulator::new(2, 1);
        assert!(acc.push_batch(9, &[&[1, 2]], &[&[1.0, 2.0]]).is_err());
        assert!(acc.push_batch(9, &[&[1], &[2]], &[&[1.0], &[2.0]]).is_err());
        assert!(acc.push_batch(9, &[&[1], &[2, 3]], &[&[1.0]]).is_err());
        assert_eq!(acc.group_count(), 0);
        // Empty batch is a no-op that creates no group either.
        acc.push_batch(9, &[&[], &[]], &[&[]]).unwrap();
        assert_eq!(acc.group_count(), 0);
        assert_eq!(acc.count(), 0);
    }

    #[test]
    fn fingerprint_buckets_resolve_collisions_by_stored_key() {
        // Force a bucket collision by using a key type whose hash is
        // constant; distinct keys must stay distinct groups.
        #[derive(PartialEq, Eq, Clone, Debug)]
        struct SameHash(u32);
        impl std::hash::Hash for SameHash {
            fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
                state.write_u64(42);
            }
        }
        let mut acc: GroupedMomentAccumulator<SameHash> = GroupedMomentAccumulator::new(1, 1);
        acc.push_scalar(SameHash(0), &[1], 2.0).unwrap();
        acc.push_scalar(SameHash(1), &[1], 5.0).unwrap();
        acc.push_scalar(SameHash(0), &[2], 3.0).unwrap();
        assert_eq!(acc.group_count(), 2);
        let g0 = acc.group(&SameHash(0)).unwrap();
        assert_eq!(g0.count(), 2);
        assert!((g0.total()[0] - 5.0).abs() < 1e-12);
        let g1 = acc.group(&SameHash(1)).unwrap();
        assert!((g1.total()[0] - 5.0).abs() < 1e-12);
        assert_eq!(g1.count(), 1);
        // Merge across shards with colliding fingerprints stays group-aware.
        let mut other: GroupedMomentAccumulator<SameHash> = GroupedMomentAccumulator::new(1, 1);
        other.push_scalar(SameHash(1), &[1], 7.0).unwrap();
        other.push_scalar(SameHash(2), &[9], 1.0).unwrap();
        acc.merge(&other).unwrap();
        assert_eq!(acc.group_count(), 3);
        assert!((acc.group(&SameHash(1)).unwrap().total()[0] - 12.0).abs() < 1e-12);
    }

    #[test]
    fn merge_schema_mismatches_rejected() {
        let mut acc: GroupedMomentAccumulator<u32> = GroupedMomentAccumulator::new(2, 1);
        assert!(acc
            .merge(&GroupedMomentAccumulator::<u32>::new(1, 1))
            .is_err());
        assert!(acc
            .merge(&GroupedMomentAccumulator::<u32>::new(2, 2))
            .is_err());
    }
}
