//! Delta-method estimation for non-linear combinations of SUM-like
//! aggregates — the extension sketched in Section 9 of the paper
//! ("Average and non-linear combinations of SUM-like aggregates").
//!
//! `AVG(e) = SUM(e) / SUM(1)` is a ratio of two *correlated* GUS estimators.
//! The SBox already produces the joint covariance matrix of any vector of
//! SUM estimates (the bilinear extension of Theorem 1), so a first-order
//! Taylor expansion gives
//!
//! ```text
//! Var(N/D) ≈ (Var_N − 2R·Cov(N,D) + R²·Var_D) / μ_D²   with R = μ_N/μ_D.
//! ```
//!
//! A general smooth function `g` of the estimate vector is supported through
//! a caller-supplied gradient.

use crate::error::CoreError;
use crate::estimator::EstimateReport;
use crate::Result;

/// A delta-method estimate: point value and approximate variance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaEstimate {
    /// The plug-in point estimate `g(X̂)`.
    pub value: f64,
    /// First-order variance approximation `∇gᵀ Σ ∇g` (clamped at 0).
    pub variance: f64,
}

impl DeltaEstimate {
    /// Standard error.
    pub fn std_error(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Two-sided normal interval for the transformed quantity.
    pub fn ci_normal(&self, level: f64) -> Result<crate::ci::ConfidenceInterval> {
        crate::ci::normal_ci(self.value, self.variance, level)
    }
}

/// Ratio estimator `estimate[num] / estimate[den]` with delta-method
/// variance. This is `AVG` when `num` accumulates `f` and `den` accumulates
/// the constant 1.
pub fn ratio(report: &EstimateReport, num: usize, den: usize) -> Result<DeltaEstimate> {
    let cov = report.covariance.as_ref().ok_or_else(|| {
        CoreError::Degenerate("covariance unavailable: ratio variance cannot be formed".into())
    })?;
    let mu_n = report.estimate[num];
    let mu_d = report.estimate[den];
    if mu_d == 0.0 {
        return Err(CoreError::Degenerate(
            "denominator estimate is zero; ratio undefined".into(),
        ));
    }
    let r = mu_n / mu_d;
    let var = (cov.get(num, num) - 2.0 * r * cov.get(num, den) + r * r * cov.get(den, den))
        / (mu_d * mu_d);
    Ok(DeltaEstimate {
        value: r,
        variance: var.max(0.0),
    })
}

/// General delta method: `g(X̂)` with variance `∇gᵀ Σ ∇g`, where `grad` is
/// the gradient of `g` evaluated at the estimate vector.
pub fn smooth_function(report: &EstimateReport, value: f64, grad: &[f64]) -> Result<DeltaEstimate> {
    let cov = report.covariance.as_ref().ok_or_else(|| {
        CoreError::Degenerate("covariance unavailable: delta variance cannot be formed".into())
    })?;
    if grad.len() != report.dims {
        return Err(CoreError::DimensionMismatch {
            expected: report.dims,
            got: grad.len(),
        });
    }
    let mut var = 0.0;
    for (p, gp) in grad.iter().enumerate() {
        for (q, gq) in grad.iter().enumerate() {
            var += gp * gq * cov.get(p, q);
        }
    }
    Ok(DeltaEstimate {
        value,
        variance: var.max(0.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::SBox;
    use crate::params::GusParams;

    /// Build a 2-dim report: dim 0 accumulates f, dim 1 accumulates 1
    /// (COUNT), under Bernoulli(p) with a deterministic "sample".
    fn avg_report(p: f64, values: &[f64]) -> EstimateReport {
        let gus = GusParams::bernoulli("r", p).unwrap();
        let mut sbox = SBox::with_dims(gus, 2);
        for (i, &v) in values.iter().enumerate() {
            sbox.push(&[i as u64], &[v, 1.0]).unwrap();
        }
        sbox.finish().unwrap()
    }

    #[test]
    fn ratio_point_estimate_is_sample_mean() {
        // AVG via ratio of scaled sums: the 1/a factors cancel, so the point
        // estimate is exactly the sample mean.
        let rep = avg_report(0.5, &[2.0, 4.0, 9.0]);
        let est = ratio(&rep, 0, 1).unwrap();
        assert!((est.value - 5.0).abs() < 1e-12);
        assert!(est.variance >= 0.0);
    }

    #[test]
    fn ratio_with_constant_values_has_tiny_variance() {
        // If every tuple carries the same f, AVG is deterministic: the
        // delta-method variance collapses (numerator and denominator are
        // perfectly correlated).
        let rep = avg_report(0.5, &[3.0; 40]);
        let est = ratio(&rep, 0, 1).unwrap();
        assert!((est.value - 3.0).abs() < 1e-12);
        assert!(
            est.variance.abs() < 1e-6 * 9.0,
            "variance = {}",
            est.variance
        );
    }

    #[test]
    fn ratio_ci_contains_point() {
        let rep = avg_report(0.3, &[1.0, 2.0, 3.0, 10.0]);
        let est = ratio(&rep, 0, 1).unwrap();
        let ci = est.ci_normal(0.95).unwrap();
        assert!(ci.contains(est.value));
        assert!((est.std_error() * est.std_error() - est.variance).abs() < 1e-12);
    }

    #[test]
    fn zero_denominator_rejected() {
        let gus = GusParams::bernoulli("r", 0.5).unwrap();
        let rep = SBox::with_dims(gus, 2).finish().unwrap();
        assert!(ratio(&rep, 0, 1).is_err());
    }

    #[test]
    fn smooth_function_linear_matches_direct_variance() {
        // g(x) = x₀ with gradient (1, 0) must reproduce Var(X₀).
        let rep = avg_report(0.5, &[1.0, 5.0, 7.0]);
        let est = smooth_function(&rep, rep.estimate[0], &[1.0, 0.0]).unwrap();
        assert!((est.variance - rep.variance(0).unwrap()).abs() < 1e-9);
        assert!((est.value - rep.estimate[0]).abs() < 1e-12);
    }

    #[test]
    fn smooth_function_gradient_arity_checked() {
        let rep = avg_report(0.5, &[1.0]);
        assert!(smooth_function(&rep, 0.0, &[1.0]).is_err());
    }

    #[test]
    fn ratio_matches_smooth_function_formulation() {
        let rep = avg_report(0.4, &[2.0, 6.0, 7.0, 9.0]);
        let r = ratio(&rep, 0, 1).unwrap();
        let mu_n = rep.estimate[0];
        let mu_d = rep.estimate[1];
        // ∇(n/d) = (1/d, −n/d²)
        let grad = [1.0 / mu_d, -mu_n / (mu_d * mu_d)];
        let s = smooth_function(&rep, mu_n / mu_d, &grad).unwrap();
        assert!((r.value - s.value).abs() < 1e-12);
        assert!((r.variance - s.variance).abs() < 1e-9 * (1.0 + r.variance));
    }
}
