//! Grouped second-moment accumulation: the `y_S` / `Y_S` terms.
//!
//! Theorem 1's variance is a linear combination of the data-dependent terms
//!
//! ```text
//! y_S = Σ_{t_S} ( Σ_{t_{S^c}} f(t) )²
//! ```
//!
//! — group the result tuples by their lineage restricted to `S`, sum `f`
//! within each group, square, and add up. Evaluated over the *population*
//! this gives the exact `y_S`; evaluated over the *sample* it gives the `Y_S`
//! statistics that Section 6.3 turns into unbiased estimates `Ŷ_S`.
//!
//! The accumulator generalizes `f` to a small vector (dimension `k`), so the
//! same pass produces the cross-moment matrices
//! `y_S[p][q] = Σ_groups (ΣF_p)(ΣF_q)` needed for covariances (and hence for
//! the delta-method AVG of Section 9).
//!
//! Grouping keys are 128-bit lineage fingerprints (see
//! [`crate::hash::fingerprint128`]): component hashes are salted by relation
//! index and combined with wrapping addition, so a key never allocates and
//! collisions are vanishingly unlikely (≈ m²/2¹²⁹).

use crate::error::CoreError;
use crate::hash::{fingerprint128, rel_salts, subset_key, FxHashMap};
use crate::relset::RelSet;
use crate::Result;

/// A small dense symmetric `k×k` matrix of cross moments.
#[derive(Debug, Clone, PartialEq)]
pub struct MomentMatrix {
    k: usize,
    data: Vec<f64>,
}

impl MomentMatrix {
    /// The zero matrix of dimension `k`.
    pub fn zero(k: usize) -> MomentMatrix {
        MomentMatrix {
            k,
            data: vec![0.0; k * k],
        }
    }

    /// Dimension `k`.
    pub fn dim(&self) -> usize {
        self.k
    }

    /// Entry `(p, q)`.
    pub fn get(&self, p: usize, q: usize) -> f64 {
        self.data[p * self.k + q]
    }

    /// Add the outer product `v·vᵀ`.
    pub fn add_outer(&mut self, v: &[f64]) {
        self.add_outer_scaled(v, 1.0);
    }

    /// Add `scale · v·vᵀ` (with `scale = -1` this retracts a previously
    /// added outer product — the delta update incremental accumulators use).
    pub fn add_outer_scaled(&mut self, v: &[f64], scale: f64) {
        debug_assert_eq!(v.len(), self.k);
        for p in 0..self.k {
            for q in 0..self.k {
                self.data[p * self.k + q] += scale * v[p] * v[q];
            }
        }
    }

    /// `self += scale · other`.
    pub fn add_scaled(&mut self, other: &MomentMatrix, scale: f64) {
        debug_assert_eq!(self.k, other.k);
        for (d, o) in self.data.iter_mut().zip(other.data.iter()) {
            *d += scale * o;
        }
    }

    /// `self *= scale`.
    pub fn scale(&mut self, scale: f64) {
        for d in &mut self.data {
            *d *= scale;
        }
    }
}

/// Streaming accumulator of the `2ⁿ` grouped second moments of a result set.
#[derive(Debug)]
pub struct GroupedMoments {
    n: usize,
    dims: usize,
    salts: Vec<u64>,
    /// For each nonempty `S` (indexed by `S.index()`): fingerprint → ΣF
    /// vector. `S = ∅` is tracked by `total` alone (a single group).
    groups: Vec<FxHashMap<u128, Vec<f64>>>,
    total: Vec<f64>,
    count: u64,
}

impl GroupedMoments {
    /// An accumulator over `n` base relations and `dims` aggregate
    /// dimensions.
    pub fn new(n: usize, dims: usize) -> GroupedMoments {
        assert!(dims >= 1, "at least one aggregate dimension required");
        GroupedMoments {
            n,
            dims,
            salts: rel_salts(n),
            groups: (0..1usize << n).map(|_| FxHashMap::default()).collect(),
            total: vec![0.0; dims],
            count: 0,
        }
    }

    /// Number of base relations.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Aggregate dimension `k`.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of rows consumed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Consume one result tuple: its per-base-relation lineage ids and its
    /// aggregate vector.
    pub fn push(&mut self, lineage: &[u64], f: &[f64]) -> Result<()> {
        if lineage.len() != self.n {
            return Err(CoreError::DimensionMismatch {
                expected: self.n,
                got: lineage.len(),
            });
        }
        if f.len() != self.dims {
            return Err(CoreError::DimensionMismatch {
                expected: self.dims,
                got: f.len(),
            });
        }
        self.count += 1;
        for (t, v) in self.total.iter_mut().zip(f) {
            *t += v;
        }
        // Per-relation fingerprints once, then combine per subset.
        let mut fp = [0u128; crate::relset::MAX_RELS];
        for i in 0..self.n {
            fp[i] = fingerprint128(self.salts[i], lineage[i]);
        }
        for s_idx in 1..1usize << self.n {
            let key = subset_key(&fp, RelSet::from_bits(s_idx as u32));
            let entry = self.groups[s_idx]
                .entry(key)
                .or_insert_with(|| vec![0.0; self.dims]);
            for (e, v) in entry.iter_mut().zip(f) {
                *e += v;
            }
        }
        Ok(())
    }

    /// Scalar convenience for `dims == 1`.
    pub fn push_scalar(&mut self, lineage: &[u64], f: f64) -> Result<()> {
        self.push(lineage, &[f])
    }

    /// Finish: produce the `y_S` cross-moment matrices and the totals.
    pub fn finish(self) -> Moments {
        let mut y = Vec::with_capacity(1usize << self.n);
        // S = ∅: one group containing everything.
        let mut m0 = MomentMatrix::zero(self.dims);
        m0.add_outer(&self.total);
        y.push(m0);
        for s_idx in 1..1usize << self.n {
            let mut m = MomentMatrix::zero(self.dims);
            for sums in self.groups[s_idx].values() {
                m.add_outer(sums);
            }
            y.push(m);
        }
        Moments {
            n: self.n,
            dims: self.dims,
            y,
            total: self.total,
            count: self.count,
        }
    }
}

/// The finished grouped moments of a result set: `y[S]` for every `S`,
/// plus the plain totals `ΣF` and the row count.
#[derive(Debug, Clone)]
pub struct Moments {
    /// Number of base relations.
    pub n: usize,
    /// Aggregate dimension.
    pub dims: usize,
    /// `y[S.index()]` — cross-moment matrix for grouping set `S`.
    pub y: Vec<MomentMatrix>,
    /// `ΣF` per dimension.
    pub total: Vec<f64>,
    /// Number of rows consumed.
    pub count: u64,
}

impl Moments {
    /// Scalar `y_S` for dimension 0 (the common single-aggregate case).
    pub fn y_scalar(&self, s: RelSet) -> f64 {
        self.y[s.index()].get(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny deterministic result set over 2 relations.
    ///
    /// rows: (l-id, o-id, f)
    fn sample_rows() -> Vec<([u64; 2], f64)> {
        vec![
            ([1, 10], 2.0),
            ([2, 10], 3.0),
            ([3, 20], 5.0),
            ([1, 20], 7.0),
        ]
    }

    fn acc_rows() -> Moments {
        let mut acc = GroupedMoments::new(2, 1);
        for (lin, f) in sample_rows() {
            acc.push_scalar(&lin, f).unwrap();
        }
        acc.finish()
    }

    #[test]
    fn y_empty_is_square_of_total() {
        let m = acc_rows();
        let total = 2.0 + 3.0 + 5.0 + 7.0;
        assert!((m.y_scalar(RelSet::EMPTY) - total * total).abs() < 1e-12);
        assert_eq!(m.count, 4);
        assert!((m.total[0] - total).abs() < 1e-12);
    }

    #[test]
    fn y_by_first_relation_groups_on_l() {
        let m = acc_rows();
        // groups by l: {1: 2+7=9}, {2: 3}, {3: 5} → 81 + 9 + 25 = 115
        assert!((m.y_scalar(RelSet::singleton(0)) - 115.0).abs() < 1e-12);
    }

    #[test]
    fn y_by_second_relation_groups_on_o() {
        let m = acc_rows();
        // groups by o: {10: 5}, {20: 12} → 25 + 144 = 169
        assert!((m.y_scalar(RelSet::singleton(1)) - 169.0).abs() < 1e-12);
    }

    #[test]
    fn y_full_is_sum_of_squares_for_distinct_lineage() {
        let m = acc_rows();
        // all four rows have distinct (l,o) lineage
        let expect = 4.0 + 9.0 + 25.0 + 49.0;
        assert!((m.y_scalar(RelSet::full(2)) - expect).abs() < 1e-12);
    }

    #[test]
    fn duplicate_full_lineage_rows_group_together() {
        // The accumulator must group, not assume distinctness.
        let mut acc = GroupedMoments::new(1, 1);
        acc.push_scalar(&[7], 1.0).unwrap();
        acc.push_scalar(&[7], 2.0).unwrap();
        let m = acc.finish();
        assert!((m.y_scalar(RelSet::singleton(0)) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn cross_moments_are_products_of_group_sums() {
        let mut acc = GroupedMoments::new(1, 2);
        acc.push(&[1], &[1.0, 10.0]).unwrap();
        acc.push(&[1], &[2.0, 20.0]).unwrap();
        acc.push(&[2], &[4.0, 40.0]).unwrap();
        let m = acc.finish();
        let y1 = &m.y[RelSet::singleton(0).index()];
        // groups: {1: (3,30)}, {2: (4,40)}
        assert!((y1.get(0, 0) - (9.0 + 16.0)).abs() < 1e-12);
        assert!((y1.get(0, 1) - (90.0 + 160.0)).abs() < 1e-12);
        assert!((y1.get(1, 1) - (900.0 + 1600.0)).abs() < 1e-12);
        assert!((y1.get(0, 1) - y1.get(1, 0)).abs() < 1e-12); // symmetric
    }

    #[test]
    fn arity_checks() {
        let mut acc = GroupedMoments::new(2, 1);
        assert!(acc.push_scalar(&[1], 1.0).is_err());
        assert!(acc.push(&[1, 2], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn empty_input_gives_zero_moments() {
        let m = GroupedMoments::new(2, 1).finish();
        for s in 0..4u32 {
            assert_eq!(m.y_scalar(RelSet::from_bits(s)), 0.0);
        }
        assert_eq!(m.count, 0);
    }

    #[test]
    fn matrix_ops() {
        let mut m = MomentMatrix::zero(2);
        m.add_outer(&[1.0, 2.0]);
        let mut n = MomentMatrix::zero(2);
        n.add_outer(&[3.0, 4.0]);
        m.add_scaled(&n, 0.5);
        assert!((m.get(0, 0) - (1.0 + 4.5)).abs() < 1e-12);
        m.scale(2.0);
        assert!((m.get(1, 1) - 2.0 * (4.0 + 8.0)).abs() < 1e-12);
        assert_eq!(m.dim(), 2);
    }
}
