//! Lineage schemas and relation sets.
//!
//! The GUS theory indexes its pair-inclusion probabilities `b_T` by the set
//! `T` of base relations on which two result tuples agree (Table "Notation"
//! in the paper). We represent such sets as bitmasks ([`RelSet`]) over a
//! [`LineageSchema`] — an ordered list of the base relations participating in
//! an expression (the paper's `L(R)`).

use std::fmt;
use std::sync::Arc;

use crate::error::CoreError;
use crate::Result;

/// Maximum number of base relations in one lineage schema.
///
/// The `b̄` table is dense over `2^n` subsets and the estimator's coefficient
/// pre-computation is `O(4^n)`; 16 relations (65 536 subsets) is far beyond
/// any plan the paper considers (their claim is "plans involving 10
/// relations").
pub const MAX_RELS: usize = 16;

/// A set of base relations, as a bitmask over a [`LineageSchema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct RelSet(u32);

impl RelSet {
    /// The empty set ∅.
    pub const EMPTY: RelSet = RelSet(0);

    /// The set containing the single relation at `bit`.
    pub fn singleton(bit: usize) -> RelSet {
        debug_assert!(bit < MAX_RELS);
        RelSet(1 << bit)
    }

    /// The full set `{0, …, n-1}`.
    pub fn full(n: usize) -> RelSet {
        debug_assert!(n <= MAX_RELS);
        if n == 0 {
            RelSet(0)
        } else {
            RelSet((1u32 << n) - 1)
        }
    }

    /// Build from a raw bitmask.
    pub fn from_bits(bits: u32) -> RelSet {
        RelSet(bits)
    }

    /// The raw bitmask.
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Usable as an index into a dense `2^n` table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Number of relations in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True for ∅.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Membership test.
    pub fn contains(self, bit: usize) -> bool {
        self.0 & (1 << bit) != 0
    }

    /// `self ∪ {bit}`.
    pub fn with(self, bit: usize) -> RelSet {
        RelSet(self.0 | (1 << bit))
    }

    /// `self ∪ other`.
    pub fn union(self, other: RelSet) -> RelSet {
        RelSet(self.0 | other.0)
    }

    /// `self ∩ other`.
    pub fn intersect(self, other: RelSet) -> RelSet {
        RelSet(self.0 & other.0)
    }

    /// `self \ other`.
    pub fn minus(self, other: RelSet) -> RelSet {
        RelSet(self.0 & !other.0)
    }

    /// Complement within the universe `{0,…,n-1}`.
    pub fn complement(self, n: usize) -> RelSet {
        RelSet(!self.0 & RelSet::full(n).0)
    }

    /// `self ⊆ other`.
    pub fn is_subset_of(self, other: RelSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// True if the two sets share no relation.
    pub fn is_disjoint(self, other: RelSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Iterate the member bit positions in increasing order.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(i)
            }
        })
    }

    /// Iterate **all** subsets of `self`, including ∅ and `self` itself.
    ///
    /// Uses the standard descending-submask enumeration; yields `2^|self|`
    /// sets in decreasing bitmask order ending with ∅.
    pub fn subsets(self) -> Subsets {
        Subsets {
            mask: self.0,
            current: self.0,
            done: false,
        }
    }
}

/// Iterator over the subsets of a [`RelSet`]; see [`RelSet::subsets`].
#[derive(Debug, Clone)]
pub struct Subsets {
    mask: u32,
    current: u32,
    done: bool,
}

impl Iterator for Subsets {
    type Item = RelSet;

    fn next(&mut self) -> Option<RelSet> {
        if self.done {
            return None;
        }
        let out = RelSet(self.current);
        if self.current == 0 {
            self.done = true;
        } else {
            self.current = (self.current - 1) & self.mask;
        }
        Some(out)
    }
}

/// The ordered list of base relations participating in an expression — the
/// paper's lineage schema `L(R)`. Bit `i` of a [`RelSet`] refers to
/// `names()[i]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineageSchema {
    names: Vec<Arc<str>>,
}

impl LineageSchema {
    /// Build a schema from relation names. Names must be unique and the count
    /// at most [`MAX_RELS`].
    pub fn new<S: AsRef<str>>(names: &[S]) -> Result<Arc<LineageSchema>> {
        if names.len() > MAX_RELS {
            return Err(CoreError::TooManyRelations {
                n: names.len(),
                max: MAX_RELS,
            });
        }
        let names: Vec<Arc<str>> = names.iter().map(|s| Arc::from(s.as_ref())).collect();
        for (i, a) in names.iter().enumerate() {
            if names[..i].iter().any(|b| b == a) {
                return Err(CoreError::DuplicateRelation {
                    name: a.to_string(),
                });
            }
        }
        Ok(Arc::new(LineageSchema { names }))
    }

    /// Convenience constructor for a single relation.
    pub fn single(name: impl AsRef<str>) -> Arc<LineageSchema> {
        LineageSchema::new(&[name.as_ref()]).expect("single name is always valid")
    }

    /// Number of relations.
    pub fn n(&self) -> usize {
        self.names.len()
    }

    /// Relation names in bit order.
    pub fn names(&self) -> &[Arc<str>] {
        &self.names
    }

    /// Bit position of `name`, if present.
    pub fn bit(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|s| &**s == name)
    }

    /// The full set over this schema.
    pub fn full(&self) -> RelSet {
        RelSet::full(self.n())
    }

    /// Build a [`RelSet`] from relation names.
    pub fn rel_set<S: AsRef<str>>(&self, names: &[S]) -> Result<RelSet> {
        let mut s = RelSet::EMPTY;
        for name in names {
            let bit = self
                .bit(name.as_ref())
                .ok_or_else(|| CoreError::UnknownRelation {
                    name: name.as_ref().to_string(),
                })?;
            s = s.with(bit);
        }
        Ok(s)
    }

    /// Render a set as `{name, name, …}` for diagnostics and figure output.
    pub fn display_set(&self, s: RelSet) -> String {
        let mut out = String::from("{");
        for (k, i) in s.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push_str(&self.names[i]);
        }
        out.push('}');
        out
    }

    /// Merge two schemas with disjoint relation names (as a join does).
    ///
    /// Returns the merged schema plus, for each input schema, the mapping
    /// `old bit → new bit`.
    pub fn merge(
        a: &LineageSchema,
        b: &LineageSchema,
    ) -> Result<(Arc<LineageSchema>, Vec<usize>, Vec<usize>)> {
        for name in &b.names {
            if a.bit(name).is_some() {
                return Err(CoreError::LineageOverlap {
                    name: name.to_string(),
                });
            }
        }
        let mut names: Vec<Arc<str>> = a.names.clone();
        names.extend(b.names.iter().cloned());
        if names.len() > MAX_RELS {
            return Err(CoreError::TooManyRelations {
                n: names.len(),
                max: MAX_RELS,
            });
        }
        let map_a = (0..a.n()).collect();
        let map_b = (0..b.n()).map(|i| a.n() + i).collect();
        Ok((Arc::new(LineageSchema { names }), map_a, map_b))
    }
}

impl fmt::Display for LineageSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L(")?;
        for (i, n) in self.names.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, ")")
    }
}

/// Translate a [`RelSet`] through a bit mapping (`old bit i → map[i]`).
pub fn map_set(s: RelSet, map: &[usize]) -> RelSet {
    let mut out = RelSet::EMPTY;
    for i in s.iter() {
        out = out.with(map[i]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_basics() {
        let s = RelSet::singleton(0).union(RelSet::singleton(2));
        assert_eq!(s.len(), 2);
        assert!(s.contains(0) && !s.contains(1) && s.contains(2));
        assert_eq!(s.index(), 0b101);
        assert_eq!(s.complement(3), RelSet::singleton(1));
        assert!(RelSet::singleton(1).is_disjoint(s));
        assert!(RelSet::singleton(0).is_subset_of(s));
        assert_eq!(s.minus(RelSet::singleton(0)), RelSet::singleton(2));
    }

    #[test]
    fn full_and_empty() {
        assert_eq!(RelSet::full(0), RelSet::EMPTY);
        assert_eq!(RelSet::full(3).len(), 3);
        assert!(RelSet::EMPTY.is_empty());
    }

    #[test]
    fn subset_enumeration_is_complete() {
        let s = RelSet::from_bits(0b1011);
        let subs: Vec<RelSet> = s.subsets().collect();
        assert_eq!(subs.len(), 8);
        assert!(subs.contains(&RelSet::EMPTY));
        assert!(subs.contains(&s));
        for t in &subs {
            assert!(t.is_subset_of(s));
        }
        // No duplicates.
        let mut sorted = subs.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
    }

    #[test]
    fn empty_set_has_one_subset() {
        let subs: Vec<RelSet> = RelSet::EMPTY.subsets().collect();
        assert_eq!(subs, vec![RelSet::EMPTY]);
    }

    #[test]
    fn iter_members() {
        let s = RelSet::from_bits(0b10110);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 2, 4]);
    }

    #[test]
    fn schema_lookup() {
        let sch = LineageSchema::new(&["lineitem", "orders"]).unwrap();
        assert_eq!(sch.n(), 2);
        assert_eq!(sch.bit("orders"), Some(1));
        assert_eq!(sch.bit("nope"), None);
        let s = sch.rel_set(&["orders"]).unwrap();
        assert_eq!(s, RelSet::singleton(1));
        assert!(sch.rel_set(&["bogus"]).is_err());
    }

    #[test]
    fn schema_rejects_duplicates_and_overflow() {
        assert!(LineageSchema::new(&["a", "a"]).is_err());
        let many: Vec<String> = (0..MAX_RELS + 1).map(|i| format!("r{i}")).collect();
        assert!(LineageSchema::new(&many).is_err());
    }

    #[test]
    fn merge_disjoint() {
        let a = LineageSchema::new(&["l", "o"]).unwrap();
        let b = LineageSchema::new(&["c"]).unwrap();
        let (m, ma, mb) = LineageSchema::merge(&a, &b).unwrap();
        assert_eq!(m.n(), 3);
        assert_eq!(ma, vec![0, 1]);
        assert_eq!(mb, vec![2]);
        assert_eq!(m.bit("c"), Some(2));
    }

    #[test]
    fn merge_overlapping_rejected() {
        let a = LineageSchema::new(&["l"]).unwrap();
        let b = LineageSchema::new(&["l"]).unwrap();
        assert!(matches!(
            LineageSchema::merge(&a, &b),
            Err(CoreError::LineageOverlap { .. })
        ));
    }

    #[test]
    fn map_set_translates_bits() {
        let s = RelSet::from_bits(0b11);
        assert_eq!(map_set(s, &[2, 0]), RelSet::from_bits(0b101));
    }

    #[test]
    fn display_set_uses_names() {
        let sch = LineageSchema::new(&["l", "o", "c"]).unwrap();
        assert_eq!(sch.display_set(RelSet::from_bits(0b101)), "{l,c}");
        assert_eq!(sch.display_set(RelSet::EMPTY), "{}");
        assert_eq!(sch.to_string(), "L(l,o,c)");
    }
}
