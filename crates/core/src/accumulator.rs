//! Incremental, merge-able moment accumulation for online aggregation.
//!
//! [`crate::moments::GroupedMoments`] is a *batch* accumulator: it stores
//! per-group `ΣF` vectors and squares them once in `finish()`. That is the
//! cheapest way to consume a sample exactly once, but it cannot answer "what
//! is the estimate *right now*?" without an `O(#groups)` pass.
//!
//! [`MomentAccumulator`] trades a small constant per push for an **O(1)
//! readout in the number of consumed rows**: the `y_S` cross-moment matrices
//! are maintained incrementally. When a tuple with aggregate vector `f`
//! lands in a group whose running sum is `g`, the group's contribution to
//! `y_S` changes from `g·gᵀ` to `(g+f)(g+f)ᵀ`, so
//!
//! ```text
//! y_S += (g+f)(g+f)ᵀ − g·gᵀ
//! ```
//!
//! — a rank-two delta per subset `S`. [`MomentAccumulator::snapshot`] then
//! just clones the `2ⁿ` small matrices (no pass over groups or rows), which
//! makes estimate, variance and confidence intervals readable after *every*
//! chunk of an online aggregation loop.
//!
//! Accumulators over the same lineage schema are **merge-able**
//! ([`MomentAccumulator::merge`]): shards can consume disjoint chunk ranges
//! in parallel and be combined associatively, with groups shared across
//! shards re-linked through the same rank-two delta. Merging is `O(groups
//! in the absorbed shard)`, never `O(rows)`. The type is plain data
//! (`Send + Sync + Clone`) — `sa-online`'s worker pool moves shard
//! accumulators across threads and merges deltas on a coordinator; that
//! surface is pinned by a compile-time assertion in this module's tests.
//!
//! Up to floating-point associativity, a `MomentAccumulator` fed any chunk
//! split (and merged in any shape) agrees with `GroupedMoments` fed the same
//! rows — the property `tests/proptests.rs` pins down.

use crate::error::CoreError;
use crate::estimator::{estimate_from_sample_moments, EstimateReport};
use crate::hash::{fingerprint128, rel_salts, subset_key, FxHashMap};
use crate::moments::{MomentMatrix, Moments};
use crate::params::GusParams;
use crate::relset::RelSet;
use crate::Result;

/// Streaming, merge-able accumulator of the `2ⁿ` grouped second moments
/// with O(1)-in-rows readout.
#[derive(Debug, Clone)]
pub struct MomentAccumulator {
    n: usize,
    dims: usize,
    salts: Vec<u64>,
    /// For each nonempty `S` (indexed by `S.index()`): fingerprint → running
    /// ΣF vector of that group. `S = ∅` needs no map (one global group).
    groups: Vec<FxHashMap<u128, Vec<f64>>>,
    /// Incrementally maintained `y_S` for every `S` (∅ included).
    y: Vec<MomentMatrix>,
    total: Vec<f64>,
    count: u64,
}

impl MomentAccumulator {
    /// An accumulator over `n` base relations and `dims` aggregate
    /// dimensions.
    pub fn new(n: usize, dims: usize) -> MomentAccumulator {
        assert!(dims >= 1, "at least one aggregate dimension required");
        MomentAccumulator {
            n,
            dims,
            salts: rel_salts(n),
            groups: (0..1usize << n).map(|_| FxHashMap::default()).collect(),
            y: (0..1usize << n).map(|_| MomentMatrix::zero(dims)).collect(),
            total: vec![0.0; dims],
            count: 0,
        }
    }

    /// Number of base relations.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Aggregate dimension `k`.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of rows consumed (across all merged shards).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running totals `ΣF` per dimension.
    pub fn total(&self) -> &[f64] {
        &self.total
    }

    /// Consume one result tuple: its per-base-relation lineage ids and its
    /// aggregate vector.
    pub fn push(&mut self, lineage: &[u64], f: &[f64]) -> Result<()> {
        if lineage.len() != self.n {
            return Err(CoreError::DimensionMismatch {
                expected: self.n,
                got: lineage.len(),
            });
        }
        if f.len() != self.dims {
            return Err(CoreError::DimensionMismatch {
                expected: self.dims,
                got: f.len(),
            });
        }
        self.count += 1;
        // S = ∅: the single global group is the running total.
        self.y[RelSet::EMPTY.index()].add_outer_scaled(&self.total, -1.0);
        for (t, v) in self.total.iter_mut().zip(f) {
            *t += v;
        }
        self.y[RelSet::EMPTY.index()].add_outer(&self.total);
        // Per-relation fingerprints once, then combine per subset.
        let mut fp = [0u128; crate::relset::MAX_RELS];
        for i in 0..self.n {
            fp[i] = fingerprint128(self.salts[i], lineage[i]);
        }
        for s_idx in 1..1usize << self.n {
            let key = subset_key(&fp, RelSet::from_bits(s_idx as u32));
            let entry = self.groups[s_idx]
                .entry(key)
                .or_insert_with(|| vec![0.0; self.dims]);
            self.y[s_idx].add_outer_scaled(entry, -1.0);
            for (e, v) in entry.iter_mut().zip(f) {
                *e += v;
            }
            self.y[s_idx].add_outer(entry);
        }
        Ok(())
    }

    /// Scalar convenience for `dims == 1`.
    pub fn push_scalar(&mut self, lineage: &[u64], f: f64) -> Result<()> {
        self.push(lineage, &[f])
    }

    /// Consume a whole columnar chunk of result tuples: `lineage` holds one
    /// id column per base relation, `f` one value column per aggregate
    /// dimension, all of equal length. Equivalent to pushing each row (up
    /// to float associativity — the same 1e-9 class as shard merging), but
    /// amortized: the `S = ∅` rank-two delta collapses to **one**
    /// retract/add pair per batch instead of two outer products per row,
    /// arity checks hoist out of the row loop, and a tuple landing in a
    /// fresh lineage group skips the retract of its zero vector entirely
    /// (exact — the retract would subtract `0·0ᵀ`).
    pub fn push_batch(&mut self, lineage: &[&[u64]], f: &[&[f64]]) -> Result<()> {
        if lineage.len() != self.n {
            return Err(CoreError::DimensionMismatch {
                expected: self.n,
                got: lineage.len(),
            });
        }
        if f.len() != self.dims {
            return Err(CoreError::DimensionMismatch {
                expected: self.dims,
                got: f.len(),
            });
        }
        let rows = f
            .first()
            .map(|c| c.len())
            .or_else(|| lineage.first().map(|c| c.len()))
            .unwrap_or(0);
        for col in lineage
            .iter()
            .map(|c| c.len())
            .chain(f.iter().map(|c| c.len()))
        {
            if col != rows {
                return Err(CoreError::DimensionMismatch {
                    expected: rows,
                    got: col,
                });
            }
        }
        if rows == 0 {
            return Ok(());
        }
        self.count += rows as u64;
        // S = ∅: the single global group — retract once, replay every row's
        // contribution to the running total, re-add once.
        self.y[RelSet::EMPTY.index()].add_outer_scaled(&self.total, -1.0);
        let mut fp = [0u128; crate::relset::MAX_RELS];
        for r in 0..rows {
            for (t, col) in self.total.iter_mut().zip(f) {
                *t += col[r];
            }
            for i in 0..self.n {
                fp[i] = fingerprint128(self.salts[i], lineage[i][r]);
            }
            for s_idx in 1..1usize << self.n {
                let key = subset_key(&fp, RelSet::from_bits(s_idx as u32));
                match self.groups[s_idx].entry(key) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        let entry = e.get_mut();
                        self.y[s_idx].add_outer_scaled(entry, -1.0);
                        for (d, col) in entry.iter_mut().zip(f) {
                            *d += col[r];
                        }
                        self.y[s_idx].add_outer(entry);
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        let entry = v.insert(f.iter().map(|col| col[r]).collect());
                        self.y[s_idx].add_outer(entry);
                    }
                }
            }
        }
        self.y[RelSet::EMPTY.index()].add_outer(&self.total);
        Ok(())
    }

    /// Absorb another accumulator over the same lineage schema — the shard
    /// merge. Groups present in both shards are combined through the same
    /// rank-two delta the per-row path uses, so the result is exactly what a
    /// single accumulator fed both row streams would hold (up to float
    /// associativity). Cost: `O(groups in other)`.
    pub fn merge(&mut self, other: &MomentAccumulator) -> Result<()> {
        if other.n != self.n {
            return Err(CoreError::DimensionMismatch {
                expected: self.n,
                got: other.n,
            });
        }
        if other.dims != self.dims {
            return Err(CoreError::DimensionMismatch {
                expected: self.dims,
                got: other.dims,
            });
        }
        self.count += other.count;
        self.y[RelSet::EMPTY.index()].add_outer_scaled(&self.total, -1.0);
        for (t, v) in self.total.iter_mut().zip(&other.total) {
            *t += v;
        }
        self.y[RelSet::EMPTY.index()].add_outer(&self.total);
        for s_idx in 1..1usize << self.n {
            for (key, osum) in &other.groups[s_idx] {
                let entry = self.groups[s_idx]
                    .entry(*key)
                    .or_insert_with(|| vec![0.0; self.dims]);
                self.y[s_idx].add_outer_scaled(entry, -1.0);
                for (e, v) in entry.iter_mut().zip(osum) {
                    *e += v;
                }
                self.y[s_idx].add_outer(entry);
            }
        }
        Ok(())
    }

    /// The current moments, as a cheap copy of the maintained state: `O(2ⁿ
    /// k²)`, independent of how many rows were consumed.
    pub fn snapshot(&self) -> Moments {
        Moments {
            n: self.n,
            dims: self.dims,
            y: self.y.clone(),
            total: self.total.clone(),
            count: self.count,
        }
    }

    /// Produce the full [`EstimateReport`] (point estimates, variance, `Ŷ_S`)
    /// for the rows consumed so far, under `gus`. Does **not** consume the
    /// accumulator — the online loop calls this after every chunk.
    pub fn report(&self, gus: &GusParams) -> Result<EstimateReport> {
        estimate_from_sample_moments(gus, &self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::GroupedMoments;

    /// rows: (l-id, o-id, f) over 2 relations — same fixture as the batch
    /// accumulator tests.
    fn sample_rows() -> Vec<([u64; 2], f64)> {
        vec![
            ([1, 10], 2.0),
            ([2, 10], 3.0),
            ([3, 20], 5.0),
            ([1, 20], 7.0),
        ]
    }

    fn batch(rows: &[([u64; 2], f64)]) -> Moments {
        let mut acc = GroupedMoments::new(2, 1);
        for (lin, f) in rows {
            acc.push_scalar(lin, *f).unwrap();
        }
        acc.finish()
    }

    fn assert_moments_eq(a: &Moments, b: &Moments, tol: f64) {
        assert_eq!(a.count, b.count);
        for (x, y) in a.total.iter().zip(&b.total) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
        for s in 0..a.y.len() {
            for p in 0..a.dims {
                for q in 0..a.dims {
                    let (x, y) = (a.y[s].get(p, q), b.y[s].get(p, q));
                    assert!(
                        (x - y).abs() < tol * (1.0 + x.abs()),
                        "y[{s}][{p},{q}]: {x} vs {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn incremental_matches_batch_at_every_prefix() {
        let rows = sample_rows();
        let mut acc = MomentAccumulator::new(2, 1);
        for k in 0..rows.len() {
            acc.push_scalar(&rows[k].0, rows[k].1).unwrap();
            assert_moments_eq(&acc.snapshot(), &batch(&rows[..=k]), 1e-12);
        }
    }

    #[test]
    fn merge_of_shards_matches_single_pass() {
        let rows = sample_rows();
        for split in 0..=rows.len() {
            let mut left = MomentAccumulator::new(2, 1);
            for (lin, f) in &rows[..split] {
                left.push_scalar(lin, *f).unwrap();
            }
            let mut right = MomentAccumulator::new(2, 1);
            for (lin, f) in &rows[split..] {
                right.push_scalar(lin, *f).unwrap();
            }
            left.merge(&right).unwrap();
            assert_moments_eq(&left.snapshot(), &batch(&rows), 1e-12);
        }
    }

    #[test]
    fn push_batch_matches_per_row_pushes() {
        let rows = sample_rows();
        let mut per_row = MomentAccumulator::new(2, 1);
        for (lin, f) in &rows {
            per_row.push_scalar(lin, *f).unwrap();
        }
        // One batch push of the same rows in column-major form.
        let l0: Vec<u64> = rows.iter().map(|(l, _)| l[0]).collect();
        let l1: Vec<u64> = rows.iter().map(|(l, _)| l[1]).collect();
        let fv: Vec<f64> = rows.iter().map(|(_, f)| *f).collect();
        let mut batched = MomentAccumulator::new(2, 1);
        batched.push_batch(&[&l0, &l1], &[&fv]).unwrap();
        assert_moments_eq(&batched.snapshot(), &per_row.snapshot(), 1e-12);
        // Splitting the batch at any point changes nothing.
        for split in 0..=rows.len() {
            let mut acc = MomentAccumulator::new(2, 1);
            acc.push_batch(&[&l0[..split], &l1[..split]], &[&fv[..split]])
                .unwrap();
            acc.push_batch(&[&l0[split..], &l1[split..]], &[&fv[split..]])
                .unwrap();
            assert_moments_eq(&acc.snapshot(), &per_row.snapshot(), 1e-12);
        }
    }

    #[test]
    fn push_batch_multi_dim_and_arity_checks() {
        let mut batched = MomentAccumulator::new(1, 2);
        let mut per_row = MomentAccumulator::new(1, 2);
        let lin = [1u64, 1, 2];
        let f0 = [1.0, 2.0, 4.0];
        let f1 = [10.0, 20.0, 40.0];
        batched.push_batch(&[&lin], &[&f0, &f1]).unwrap();
        for i in 0..3 {
            per_row.push(&[lin[i]], &[f0[i], f1[i]]).unwrap();
        }
        assert_moments_eq(&batched.snapshot(), &per_row.snapshot(), 1e-12);
        // Wrong relation count, dim count, or ragged columns.
        let mut acc = MomentAccumulator::new(2, 1);
        assert!(acc.push_batch(&[&lin], &[&f0]).is_err());
        assert!(acc.push_batch(&[&lin, &lin], &[&f0, &f1]).is_err());
        assert!(acc.push_batch(&[&lin, &lin[..2]], &[&f0]).is_err());
        assert_eq!(acc.count(), 0, "failed batch must not half-apply");
        // Empty batch is a no-op.
        acc.push_batch(&[&[], &[]], &[&[]]).unwrap();
        assert_eq!(acc.count(), 0);
    }

    #[test]
    fn merge_is_group_aware_across_shards() {
        // The same lineage id split across shards must end up in ONE group:
        // y_{r} = (1+2)² = 9, not 1² + 2² = 5.
        let mut a = MomentAccumulator::new(1, 1);
        a.push_scalar(&[7], 1.0).unwrap();
        let mut b = MomentAccumulator::new(1, 1);
        b.push_scalar(&[7], 2.0).unwrap();
        a.merge(&b).unwrap();
        let m = a.snapshot();
        assert!((m.y_scalar(RelSet::singleton(0)) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn multi_dim_cross_moments_match_batch() {
        let mut inc = MomentAccumulator::new(1, 2);
        let mut bat = GroupedMoments::new(1, 2);
        let rows: &[([u64; 1], [f64; 2])] =
            &[([1], [1.0, 10.0]), ([1], [2.0, 20.0]), ([2], [4.0, 40.0])];
        for (lin, f) in rows {
            inc.push(lin, f).unwrap();
            bat.push(lin, f).unwrap();
        }
        assert_moments_eq(&inc.snapshot(), &bat.finish(), 1e-12);
    }

    #[test]
    fn report_is_readable_mid_stream() {
        let gus = GusParams::bernoulli("r", 0.5).unwrap();
        let mut acc = MomentAccumulator::new(1, 1);
        acc.push_scalar(&[1], 3.0).unwrap();
        let r1 = acc.report(&gus).unwrap();
        assert!((r1.estimate[0] - 6.0).abs() < 1e-12);
        acc.push_scalar(&[2], 5.0).unwrap();
        let r2 = acc.report(&gus).unwrap();
        assert!((r2.estimate[0] - 16.0).abs() < 1e-12);
        assert_eq!(r2.m, 2);
        assert!(r2.variance(0).unwrap() >= 0.0);
    }

    #[test]
    fn arity_and_merge_mismatches_rejected() {
        let mut acc = MomentAccumulator::new(2, 1);
        assert!(acc.push_scalar(&[1], 1.0).is_err());
        assert!(acc.push(&[1, 2], &[1.0, 2.0]).is_err());
        let other = MomentAccumulator::new(1, 1);
        assert!(acc.merge(&other).is_err());
        let other = MomentAccumulator::new(2, 2);
        assert!(acc.merge(&other).is_err());
    }

    #[test]
    fn accumulators_are_send_sync_clone() {
        // The shard-parallel online driver moves accumulators into worker
        // threads and clones/merges them on a coordinator; a field change
        // that breaks Send/Sync/Clone must fail here, at compile time.
        fn assert_shardable<T: Send + Sync + Clone>() {}
        assert_shardable::<MomentAccumulator>();
        assert_shardable::<crate::GroupedMomentAccumulator<Vec<u64>>>();
    }

    #[test]
    fn empty_accumulator_snapshot_is_zero() {
        let m = MomentAccumulator::new(2, 1).snapshot();
        for s in 0..4u32 {
            assert_eq!(m.y_scalar(RelSet::from_bits(s)), 0.0);
        }
        assert_eq!(m.count, 0);
    }
}
