//! Error type for the GUS algebra and estimator.

use std::fmt;

/// Errors from constructing or combining GUS parameters and from estimation.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// More base relations than the dense `b̄` representation supports.
    TooManyRelations {
        /// Requested relation count.
        n: usize,
        /// Supported maximum.
        max: usize,
    },
    /// Two relations with the same name in one lineage schema.
    DuplicateRelation {
        /// The repeated name.
        name: String,
    },
    /// A relation name not present in the lineage schema.
    UnknownRelation {
        /// The missing name.
        name: String,
    },
    /// Join/composition of GUS methods whose lineage schemas overlap
    /// (Proposition 6 requires `L(R₁) ∩ L(R₂) = ∅`; self-joins are out of
    /// scope, as the paper discusses in Section 9).
    LineageOverlap {
        /// A relation present on both sides.
        name: String,
    },
    /// An operation that requires both operands over the same lineage schema
    /// (compaction, union) was given different schemas.
    SchemaMismatch {
        /// Rendering of the left schema.
        left: String,
        /// Rendering of the right schema.
        right: String,
    },
    /// A probability or coefficient outside its legal range, or a `b̄` table
    /// of the wrong length.
    InvalidParam(String),
    /// Mismatched lineage arity or aggregate dimension fed to the estimator.
    DimensionMismatch {
        /// What was expected.
        expected: usize,
        /// What was received.
        got: usize,
    },
    /// An estimate was requested from a configuration that cannot produce one
    /// (e.g. `a = 0`).
    Degenerate(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::TooManyRelations { n, max } => {
                write!(f, "{n} base relations exceed the supported maximum {max}")
            }
            CoreError::DuplicateRelation { name } => {
                write!(f, "duplicate relation `{name}` in lineage schema")
            }
            CoreError::UnknownRelation { name } => {
                write!(f, "relation `{name}` not in lineage schema")
            }
            CoreError::LineageOverlap { name } => write!(
                f,
                "lineage schemas overlap on `{name}` (Proposition 6 requires disjoint lineage; self-joins are unsupported)"
            ),
            CoreError::SchemaMismatch { left, right } => {
                write!(f, "lineage schema mismatch: {left} vs {right}")
            }
            CoreError::InvalidParam(msg) => write!(f, "invalid GUS parameter: {msg}"),
            CoreError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            CoreError::Degenerate(msg) => write!(f, "degenerate estimation problem: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_key_facts() {
        let e = CoreError::TooManyRelations { n: 20, max: 16 };
        assert!(e.to_string().contains("20"));
        let e = CoreError::LineageOverlap { name: "l".into() };
        assert!(e.to_string().contains("self-joins"));
        let e = CoreError::DimensionMismatch {
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("expected 2"));
    }
}
