//! Confidence intervals (Section 6.4 of the paper).
//!
//! Two flavours, exactly as the paper offers:
//! * **optimistic** normal intervals — `μ̂ ± z_{(1+γ)/2}·σ̂` (for γ = 0.95
//!   this is the paper's `μ̂ ± 1.96σ̂`), justified by the near-normality of
//!   sums of many loosely-interacting parts, and
//! * **pessimistic** Chebyshev intervals — `μ̂ ± σ̂/√(1−γ)` (for γ = 0.95,
//!   `μ̂ ± 4.47σ̂`), valid for *any* distribution.
//!
//! Plus one-sided quantile bounds for the paper's `QUANTILE(SUM(…), q)` view
//! syntax: `μ̂ + Φ⁻¹(q)·σ̂`.

use std::fmt;

use crate::error::CoreError;
use crate::normal::inv_normal_cdf;
use crate::Result;

/// Which bound family produced an interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CiMethod {
    /// Normal-approximation (optimistic) bounds.
    Normal,
    /// Chebyshev (pessimistic, distribution-free) bounds.
    Chebyshev,
}

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
    /// Coverage level γ ∈ (0,1), e.g. 0.95.
    pub level: f64,
    /// Bound family.
    pub method: CiMethod,
}

impl ConfidenceInterval {
    /// Interval width `hi − lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// True iff `x` lies inside the interval (inclusive).
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Half-width relative to the centre, as a dimensionless error measure.
    pub fn relative_half_width(&self) -> f64 {
        let centre = (self.lo + self.hi) / 2.0;
        if centre == 0.0 {
            f64::INFINITY
        } else {
            (self.width() / 2.0) / centre.abs()
        }
    }
}

impl fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = match self.method {
            CiMethod::Normal => "normal",
            CiMethod::Chebyshev => "chebyshev",
        };
        write!(
            f,
            "[{:.6}, {:.6}] ({:.0}% {m})",
            self.lo,
            self.hi,
            self.level * 100.0
        )
    }
}

fn check_inputs(variance: f64, level: f64) -> Result<f64> {
    if !(0.0 < level && level < 1.0) {
        return Err(CoreError::InvalidParam(format!(
            "confidence level {level} must be in (0,1)"
        )));
    }
    if !variance.is_finite() || variance < 0.0 {
        return Err(CoreError::Degenerate(format!(
            "variance {variance} is not a finite non-negative number"
        )));
    }
    Ok(variance.sqrt())
}

/// Two-sided normal interval at coverage `level`.
pub fn normal_ci(mean: f64, variance: f64, level: f64) -> Result<ConfidenceInterval> {
    let sd = check_inputs(variance, level)?;
    let z = inv_normal_cdf((1.0 + level) / 2.0);
    Ok(ConfidenceInterval {
        lo: mean - z * sd,
        hi: mean + z * sd,
        level,
        method: CiMethod::Normal,
    })
}

/// Two-sided Chebyshev interval at coverage `level`:
/// `P(|X−μ| ≥ kσ) ≤ 1/k²`, so `k = 1/√(1−level)`.
pub fn chebyshev_ci(mean: f64, variance: f64, level: f64) -> Result<ConfidenceInterval> {
    let sd = check_inputs(variance, level)?;
    let k = 1.0 / (1.0 - level).sqrt();
    Ok(ConfidenceInterval {
        lo: mean - k * sd,
        hi: mean + k * sd,
        level,
        method: CiMethod::Chebyshev,
    })
}

/// One-sided quantile bound: the value `v` with `P(true answer ≤ v) ≈ q`
/// under the normal approximation — the paper's `QUANTILE(SUM(…), q)`.
pub fn quantile_bound(mean: f64, variance: f64, q: f64) -> Result<f64> {
    let sd = check_inputs(variance, q.clamp(1e-12, 1.0 - 1e-12))?;
    Ok(mean + inv_normal_cdf(q) * sd)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_95_uses_1_96() {
        let ci = normal_ci(100.0, 4.0, 0.95).unwrap();
        // σ = 2 → half-width ≈ 3.92
        assert!((ci.lo - (100.0 - 3.9199)).abs() < 1e-3);
        assert!((ci.hi - (100.0 + 3.9199)).abs() < 1e-3);
        assert!(ci.contains(100.0));
        assert!(!ci.contains(110.0));
    }

    #[test]
    fn chebyshev_95_uses_4_47() {
        // The paper's Section 6.4 constant: 4.47σ̂ at 95%.
        let ci = chebyshev_ci(0.0, 1.0, 0.95).unwrap();
        assert!((ci.hi - 4.4721).abs() < 1e-3, "hi = {}", ci.hi);
        assert!((ci.lo + 4.4721).abs() < 1e-3);
    }

    #[test]
    fn chebyshev_wider_than_normal() {
        let n = normal_ci(5.0, 2.0, 0.95).unwrap();
        let c = chebyshev_ci(5.0, 2.0, 0.95).unwrap();
        assert!(c.width() > n.width());
        // "at the expense of a factor of 2 in width" (paper): 4.47/1.96 ≈ 2.28
        assert!((c.width() / n.width() - 4.4721 / 1.95996).abs() < 1e-3);
    }

    #[test]
    fn quantile_bounds_match_view_semantics() {
        // The intro's APPROX view: lo at q=0.05, hi at q=0.95.
        let lo = quantile_bound(100.0, 4.0, 0.05).unwrap();
        let hi = quantile_bound(100.0, 4.0, 0.95).unwrap();
        assert!(lo < 100.0 && hi > 100.0);
        assert!((hi - (100.0 + 1.6449 * 2.0)).abs() < 1e-3);
        assert!((lo + hi - 200.0).abs() < 1e-9); // symmetric around the mean
    }

    #[test]
    fn zero_variance_degenerates_to_point() {
        let ci = normal_ci(7.0, 0.0, 0.95).unwrap();
        assert_eq!(ci.lo, 7.0);
        assert_eq!(ci.hi, 7.0);
        assert_eq!(ci.width(), 0.0);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(normal_ci(0.0, -1.0, 0.95).is_err());
        assert!(normal_ci(0.0, f64::NAN, 0.95).is_err());
        assert!(normal_ci(0.0, 1.0, 0.0).is_err());
        assert!(normal_ci(0.0, 1.0, 1.0).is_err());
        assert!(chebyshev_ci(0.0, 1.0, 1.5).is_err());
    }

    #[test]
    fn relative_half_width() {
        let ci = normal_ci(100.0, 4.0, 0.95).unwrap();
        assert!((ci.relative_half_width() - 0.0392).abs() < 1e-3);
        let ci0 = normal_ci(0.0, 4.0, 0.95).unwrap();
        assert!(ci0.relative_half_width().is_infinite());
    }

    #[test]
    fn display_mentions_method_and_level() {
        let ci = chebyshev_ci(1.0, 1.0, 0.9).unwrap();
        let s = ci.to_string();
        assert!(s.contains("90%"));
        assert!(s.contains("chebyshev"));
    }
}
