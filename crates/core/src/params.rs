//! GUS parameters `G(a, b̄)` and the operations of the sampling algebra.
//!
//! A [`GusParams`] records, for a generalized-uniform-sampling process over a
//! [`LineageSchema`] of `n` base relations (Definition 1 of the paper):
//!
//! * `a = P[t ∈ 𝓡]` — first-order inclusion probability (identical for all
//!   `t` by uniformity), and
//! * `b_T = P[t, t' ∈ 𝓡 | T(t,t') = T]` for every `T ⊆ {1..n}` — the pair
//!   inclusion probability given that `t` and `t'` agree on *exactly* the
//!   base relations in `T` — stored densely, indexed by `RelSet::index()`.
//!
//! The algebra (Propositions 4–9) lives here as methods: [`GusParams::join`]
//! (disjoint lineage), [`GusParams::compact`] (stacking on the same lineage),
//! [`GusParams::union`] (combining two independent samples),
//! [`GusParams::compose`] (multi-dimensional design, an alias of `join`), and
//! [`GusParams::embed`] (re-expressing a method over a wider lineage schema,
//! which is what makes Proposition 4's identity insertions and the rewriter's
//! bookkeeping trivial).

use std::fmt;
use std::sync::Arc;

use crate::coeffs::{d_coeffs_for, moebius_transform};
use crate::error::CoreError;
use crate::relset::{map_set, LineageSchema, RelSet};
use crate::Result;

/// Tolerance for probability-range validation. Combinators multiply a chain
/// of probabilities, so tiny negative excursions from rounding are tolerated
/// and clamped.
const PROB_EPS: f64 = 1e-9;

/// The parameters `G(a, b̄)` of a GUS method over a lineage schema.
#[derive(Debug, Clone)]
pub struct GusParams {
    schema: Arc<LineageSchema>,
    a: f64,
    /// Dense table of `b_T`, indexed by `T.index()`; length `2^n`.
    b: Box<[f64]>,
    /// The relations this method actually samples (bits where the process is
    /// not trivially "keep everything"). Purely diagnostic; the algebra is
    /// correct regardless.
    support: RelSet,
}

impl GusParams {
    /// Build from raw parts, validating ranges and table length.
    pub fn new(schema: Arc<LineageSchema>, a: f64, b: Vec<f64>) -> Result<GusParams> {
        let n = schema.n();
        if b.len() != 1usize << n {
            return Err(CoreError::InvalidParam(format!(
                "b̄ table has {} entries, expected 2^{n}",
                b.len()
            )));
        }
        validate_prob("a", a)?;
        let mut b = b;
        for (i, v) in b.iter_mut().enumerate() {
            validate_prob(&format!("b[{i:#b}]"), *v)?;
            *v = v.clamp(0.0, 1.0);
        }
        Ok(GusParams {
            support: schema.full(),
            schema,
            a: a.clamp(0.0, 1.0),
            b: b.into_boxed_slice(),
        })
    }

    /// Proposition 4: the identity quasi-operator `G(1, 1̄)` — keeps
    /// everything, may be inserted anywhere in a plan.
    pub fn identity(schema: Arc<LineageSchema>) -> GusParams {
        let len = 1usize << schema.n();
        GusParams {
            schema,
            a: 1.0,
            b: vec![1.0; len].into_boxed_slice(),
            support: RelSet::EMPTY,
        }
    }

    /// The null method `G(0, 0̄)` — blocks everything (the additive identity
    /// of Theorem 2's semiring structure).
    pub fn null(schema: Arc<LineageSchema>) -> GusParams {
        let len = 1usize << schema.n();
        GusParams {
            support: schema.full(),
            schema,
            a: 0.0,
            b: vec![0.0; len].into_boxed_slice(),
        }
    }

    /// Figure 1, row 1 — Bernoulli(p) over a single relation:
    /// `a = p, b_∅ = p², b_R = p`.
    pub fn bernoulli(relation: impl AsRef<str>, p: f64) -> Result<GusParams> {
        validate_prob("p", p)?;
        let schema = LineageSchema::single(relation);
        Ok(GusParams {
            schema,
            a: p,
            b: vec![p * p, p].into_boxed_slice(),
            support: RelSet::singleton(0),
        })
    }

    /// Figure 1, row 2 — fixed-size sampling without replacement of `n` out
    /// of `population` tuples: `a = n/N, b_∅ = n(n−1)/(N(N−1)), b_R = n/N`.
    pub fn wor(relation: impl AsRef<str>, n: u64, population: u64) -> Result<GusParams> {
        if population == 0 || n > population {
            return Err(CoreError::InvalidParam(format!(
                "WOR sample size {n} out of population {population}"
            )));
        }
        let schema = LineageSchema::single(relation);
        let nn = n as f64;
        let cap = population as f64;
        let a = nn / cap;
        let b_empty = if population > 1 {
            nn * (nn - 1.0) / (cap * (cap - 1.0))
        } else {
            // Population of one: two *distinct* tuples cannot exist, so b_∅
            // is vacuous; define it as 0.
            0.0
        };
        Ok(GusParams {
            schema,
            a,
            b: vec![b_empty, a].into_boxed_slice(),
            support: RelSet::singleton(0),
        })
    }

    /// The lineage schema.
    pub fn schema(&self) -> &Arc<LineageSchema> {
        &self.schema
    }

    /// Number of base relations `n`.
    pub fn n(&self) -> usize {
        self.schema.n()
    }

    /// First-order inclusion probability `a`.
    pub fn a(&self) -> f64 {
        self.a
    }

    /// Pair inclusion probability `b_T`.
    pub fn b(&self, t: RelSet) -> f64 {
        self.b[t.index()]
    }

    /// The whole `b̄` table, indexed by `RelSet::index()`.
    pub fn b_table(&self) -> &[f64] {
        &self.b
    }

    /// `b_T` looked up by relation names.
    pub fn b_named<S: AsRef<str>>(&self, names: &[S]) -> Result<f64> {
        Ok(self.b(self.schema.rel_set(names)?))
    }

    /// Relations this method actually samples.
    pub fn support(&self) -> RelSet {
        self.support
    }

    /// A proper sampler satisfies `b_full = a` (a pair agreeing on every
    /// relation is a single tuple). Quasi-operators produced mid-rewrite
    /// always satisfy this too; the check tolerates rounding.
    pub fn is_proper(&self) -> bool {
        (self.b[self.schema.full().index()] - self.a).abs() <= 1e-9 * (1.0 + self.a)
    }

    /// Theorem 1's `c_S = Σ_{T⊆S} (−1)^{|S\T|} b_T` for all `S`, dense.
    pub fn c_coeffs(&self) -> Vec<f64> {
        moebius_transform(&self.b)
    }

    /// Section 6.3's `d_{S,V}` table for a fixed `S` (see
    /// [`crate::coeffs::d_coeffs_for`]).
    pub fn d_coeffs_for(&self, s: RelSet) -> Vec<f64> {
        d_coeffs_for(&self.b, s, self.n())
    }

    /// Re-express this method over a wider lineage `target`.
    ///
    /// `mapping[i]` gives the bit in `target` of this schema's relation `i`.
    /// Relations of `target` outside the image are untouched by the process
    /// (sampled with probability 1), so
    /// `b'_T = b_{pullback(T ∩ image)}` and `a' = a`: whether two tuples
    /// agree on an unsampled relation cannot change their joint survival.
    pub fn embed(&self, target: Arc<LineageSchema>, mapping: &[usize]) -> Result<GusParams> {
        if mapping.len() != self.n() {
            return Err(CoreError::DimensionMismatch {
                expected: self.n(),
                got: mapping.len(),
            });
        }
        for &m in mapping {
            if m >= target.n() {
                return Err(CoreError::InvalidParam(format!(
                    "mapping target bit {m} out of range for {target}"
                )));
            }
        }
        let tn = target.n();
        let mut b = vec![0.0; 1usize << tn];
        for (t_idx, slot) in b.iter_mut().enumerate() {
            let t = RelSet::from_bits(t_idx as u32);
            // Pull back T ∩ image through the mapping.
            let mut back = RelSet::EMPTY;
            for (i, &m) in mapping.iter().enumerate() {
                if t.contains(m) {
                    back = back.with(i);
                }
            }
            *slot = self.b[back.index()];
        }
        Ok(GusParams {
            schema: target,
            a: self.a,
            b: b.into_boxed_slice(),
            support: map_set(self.support, mapping),
        })
    }

    /// Embed by relation names: each of this schema's relations must appear
    /// in `target`.
    pub fn embed_by_name(&self, target: Arc<LineageSchema>) -> Result<GusParams> {
        let mapping: Result<Vec<usize>> = self
            .schema
            .names()
            .iter()
            .map(|nm| {
                target.bit(nm).ok_or_else(|| CoreError::UnknownRelation {
                    name: nm.to_string(),
                })
            })
            .collect();
        self.embed(target, &mapping?)
    }

    /// Proposition 6 (join) / Proposition 9 (composition): combine two
    /// independent GUS methods over **disjoint** lineage schemas.
    ///
    /// `a = a₁a₂`, `b_T = b₁_{T∩L₁} · b₂_{T∩L₂}`.
    pub fn join(&self, other: &GusParams) -> Result<GusParams> {
        let (schema, map_l, map_r) = LineageSchema::merge(&self.schema, &other.schema)?;
        let left = self.embed(schema.clone(), &map_l)?;
        let right = other.embed(schema, &map_r)?;
        // After embedding, the product over the merged schema is exactly the
        // proposition's formula.
        left.compact(&right)
    }

    /// Proposition 9's name for [`GusParams::join`]: composition of sampling
    /// methods over different relations into a multi-dimensional design.
    pub fn compose(&self, other: &GusParams) -> Result<GusParams> {
        self.join(other)
    }

    /// Proposition 8 (compaction): stack two independent GUS processes over
    /// the **same** lineage schema — `G₁(G₂(R))`, or equivalently intersect
    /// two independent samples. `a = a₁a₂`, `b_T = b₁_T·b₂_T`.
    pub fn compact(&self, other: &GusParams) -> Result<GusParams> {
        self.check_same_schema(other)?;
        let b = self
            .b
            .iter()
            .zip(other.b.iter())
            .map(|(x, y)| x * y)
            .collect::<Vec<f64>>();
        Ok(GusParams {
            schema: self.schema.clone(),
            a: self.a * other.a,
            b: b.into_boxed_slice(),
            support: self.support.union(other.support),
        })
    }

    /// Proposition 7 (union): combine two **independent** samples of the same
    /// expression. `a = a₁+a₂−a₁a₂`,
    /// `b_T = 2a−1 + (1−2a₁+b₁_T)(1−2a₂+b₂_T)`.
    pub fn union(&self, other: &GusParams) -> Result<GusParams> {
        self.check_same_schema(other)?;
        let a = self.a + other.a - self.a * other.a;
        let b = self
            .b
            .iter()
            .zip(other.b.iter())
            .map(|(&b1, &b2)| {
                let v = 2.0 * a - 1.0 + (1.0 - 2.0 * self.a + b1) * (1.0 - 2.0 * other.a + b2);
                v.clamp(0.0, 1.0)
            })
            .collect::<Vec<f64>>();
        Ok(GusParams {
            schema: self.schema.clone(),
            a,
            b: b.into_boxed_slice(),
            support: self.support.union(other.support),
        })
    }

    fn check_same_schema(&self, other: &GusParams) -> Result<()> {
        if self.schema != other.schema {
            return Err(CoreError::SchemaMismatch {
                left: self.schema.to_string(),
                right: other.schema.to_string(),
            });
        }
        Ok(())
    }

    /// Approximate structural equality (same schema, `a` and `b̄` within
    /// `tol`), used by tests and the rewriter's verification mode.
    pub fn approx_eq(&self, other: &GusParams, tol: f64) -> bool {
        self.schema == other.schema
            && (self.a - other.a).abs() <= tol
            && self
                .b
                .iter()
                .zip(other.b.iter())
                .all(|(x, y)| (x - y).abs() <= tol)
    }
}

impl fmt::Display for GusParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G(a={:.6e}; ", self.a)?;
        let n = self.n();
        for (i, t_idx) in (0..1usize << n).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let t = RelSet::from_bits(t_idx as u32);
            write!(f, "b{}={:.6e}", self.schema.display_set(t), self.b[t_idx])?;
        }
        write!(f, ")")
    }
}

fn validate_prob(name: &str, v: f64) -> Result<()> {
    if !v.is_finite() || !(-PROB_EPS..=1.0 + PROB_EPS).contains(&v) {
        return Err(CoreError::InvalidParam(format!(
            "{name} = {v} is not a probability"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn bernoulli_figure1() {
        let g = GusParams::bernoulli("l", 0.1).unwrap();
        assert!((g.a() - 0.1).abs() < TOL);
        assert!((g.b(RelSet::EMPTY) - 0.01).abs() < TOL);
        assert!((g.b(RelSet::singleton(0)) - 0.1).abs() < TOL);
        assert!(g.is_proper());
    }

    #[test]
    fn wor_figure1() {
        // The paper's WOR(1000, 150000) from Example 2.
        let g = GusParams::wor("o", 1000, 150_000).unwrap();
        assert!((g.a() - 6.6667e-3).abs() < 1e-7);
        assert!((g.b(RelSet::EMPTY) - 4.44e-5).abs() < 1e-7);
        assert!((g.b(RelSet::singleton(0)) - 6.6667e-3).abs() < 1e-7);
        assert!(g.is_proper());
    }

    #[test]
    fn example1_join_parameters() {
        // Example 1/3 of the paper: B(0.1) on lineitem ⋈ WOR(1000/150000) on
        // orders. Gold values printed in the paper (4 significant digits).
        let gl = GusParams::bernoulli("l", 0.1).unwrap();
        let go = GusParams::wor("o", 1000, 150_000).unwrap();
        let g = gl.join(&go).unwrap();
        let b = |names: &[&str]| g.b_named(names).unwrap();
        assert!((g.a() - 6.667e-4).abs() < 1e-7);
        assert!((b(&[]) - 4.44e-7).abs() < 1e-9);
        assert!((b(&["o"]) - 6.667e-5).abs() < 1e-8);
        assert!((b(&["l"]) - 4.44e-6).abs() < 1e-8);
        assert!((b(&["l", "o"]) - 6.667e-4).abs() < 1e-7);
        assert!(g.is_proper());
    }

    #[test]
    fn example5_bidimensional_bernoulli() {
        // Example 5: B(0.2) ∘ B(0.3) → a=0.06, b_∅=0.0036, b_o=0.012,
        // b_l=0.018, b_lo=0.06.
        let g = GusParams::bernoulli("l", 0.2)
            .unwrap()
            .compose(&GusParams::bernoulli("o", 0.3).unwrap())
            .unwrap();
        let b = |names: &[&str]| g.b_named(names).unwrap();
        assert!((g.a() - 0.06).abs() < TOL);
        assert!((b(&[]) - 0.0036).abs() < TOL);
        assert!((b(&["o"]) - 0.012).abs() < TOL);
        assert!((b(&["l"]) - 0.018).abs() < TOL);
        assert!((b(&["l", "o"]) - 0.06).abs() < TOL);
    }

    #[test]
    fn identity_is_neutral_for_compact() {
        let g = GusParams::bernoulli("l", 0.25).unwrap();
        let id = GusParams::identity(g.schema().clone());
        let c = g.compact(&id).unwrap();
        assert!(c.approx_eq(&g, TOL));
    }

    #[test]
    fn null_is_neutral_for_union_and_absorbing_for_compact() {
        let g = GusParams::bernoulli("l", 0.25).unwrap();
        let z = GusParams::null(g.schema().clone());
        assert!(g.union(&z).unwrap().approx_eq(&g, TOL));
        assert!(g.compact(&z).unwrap().approx_eq(&z, TOL));
    }

    #[test]
    fn union_of_two_bernoullis_is_bernoulli_of_or() {
        // Two independent Bernoulli(p) samples of the same relation unioned:
        // a tuple survives iff either coin keeps it → Bernoulli(1-(1-p)²),
        // and distinct tuples stay independent.
        let p1 = 0.2;
        let p2 = 0.5;
        let g = GusParams::bernoulli("r", p1)
            .unwrap()
            .union(&GusParams::bernoulli("r", p2).unwrap())
            .unwrap();
        let q = 1.0 - (1.0 - p1) * (1.0 - p2);
        assert!((g.a() - q).abs() < TOL);
        assert!((g.b(RelSet::EMPTY) - q * q).abs() < TOL);
        assert!((g.b(RelSet::singleton(0)) - q).abs() < TOL);
        assert!(g.is_proper());
    }

    #[test]
    fn compact_of_two_bernoullis_multiplies() {
        let g = GusParams::bernoulli("r", 0.4)
            .unwrap()
            .compact(&GusParams::bernoulli("r", 0.5).unwrap())
            .unwrap();
        assert!((g.a() - 0.2).abs() < TOL);
        assert!((g.b(RelSet::EMPTY) - 0.04).abs() < TOL);
        assert!(g.is_proper());
    }

    #[test]
    fn join_requires_disjoint_lineage() {
        let g = GusParams::bernoulli("l", 0.1).unwrap();
        assert!(matches!(
            g.join(&GusParams::bernoulli("l", 0.2).unwrap()),
            Err(CoreError::LineageOverlap { .. })
        ));
    }

    #[test]
    fn compact_requires_same_schema() {
        let g = GusParams::bernoulli("l", 0.1).unwrap();
        let h = GusParams::bernoulli("o", 0.1).unwrap();
        assert!(matches!(
            g.compact(&h),
            Err(CoreError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn embed_keeps_marginals() {
        let g = GusParams::bernoulli("l", 0.1).unwrap();
        let target = LineageSchema::new(&["o", "l"]).unwrap();
        let e = g.embed_by_name(target.clone()).unwrap();
        assert!((e.a() - 0.1).abs() < TOL);
        // Agreement on `o` alone does not change survival of an `l` pair.
        assert!((e.b_named(&["o"]).unwrap() - 0.01).abs() < TOL);
        assert!((e.b_named(&["l"]).unwrap() - 0.1).abs() < TOL);
        assert!((e.b_named(&["l", "o"]).unwrap() - 0.1).abs() < TOL);
        assert!((e.b_named::<&str>(&[]).unwrap() - 0.01).abs() < TOL);
        assert_eq!(e.support(), RelSet::singleton(1));
    }

    #[test]
    fn embed_then_compact_equals_join() {
        let gl = GusParams::bernoulli("l", 0.1).unwrap();
        let go = GusParams::wor("o", 10, 100).unwrap();
        let joined = gl.join(&go).unwrap();
        let target = joined.schema().clone();
        let alt = gl
            .embed_by_name(target.clone())
            .unwrap()
            .compact(&go.embed_by_name(target).unwrap())
            .unwrap();
        assert!(joined.approx_eq(&alt, TOL));
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(GusParams::bernoulli("l", 1.5).is_err());
        assert!(GusParams::bernoulli("l", -0.1).is_err());
        assert!(GusParams::wor("o", 11, 10).is_err());
        assert!(GusParams::wor("o", 1, 0).is_err());
        let schema = LineageSchema::single("r");
        assert!(GusParams::new(schema.clone(), 0.5, vec![0.1]).is_err()); // wrong len
        assert!(GusParams::new(schema, f64::NAN, vec![0.1, 0.2]).is_err());
    }

    #[test]
    fn wor_full_population_is_identity_like() {
        let g = GusParams::wor("r", 5, 5).unwrap();
        assert!((g.a() - 1.0).abs() < TOL);
        assert!((g.b(RelSet::EMPTY) - 1.0).abs() < TOL);
    }

    #[test]
    fn wor_single_tuple_population() {
        let g = GusParams::wor("r", 1, 1).unwrap();
        assert!((g.a() - 1.0).abs() < TOL);
        assert_eq!(g.b(RelSet::EMPTY), 0.0); // vacuous
    }

    #[test]
    fn display_contains_parameters() {
        let g = GusParams::bernoulli("l", 0.1).unwrap();
        let s = g.to_string();
        assert!(s.contains("a=1.0"), "{s}");
        assert!(s.contains("b{l}"), "{s}");
    }

    /// The semiring caveat documented in DESIGN.md §1: compaction does NOT
    /// distribute over union at the parameter level, because the union
    /// formula assumes its two arms are *independent* samples while the
    /// distributed form shares one compaction process across both arms.
    /// Event-level distributivity (g ∧ (h ∨ k) = (g∧h) ∨ (g∧k) for a shared
    /// g) is a statement about one process, not about parameters.
    #[test]
    fn compaction_does_not_distribute_over_union() {
        let g = GusParams::bernoulli("r", 0.5).unwrap();
        let h = GusParams::bernoulli("r", 0.4).unwrap();
        let k = GusParams::bernoulli("r", 0.3).unwrap();
        let lhs = g.compact(&h.union(&k).unwrap()).unwrap();
        let rhs = g
            .compact(&h)
            .unwrap()
            .union(&g.compact(&k).unwrap())
            .unwrap();
        // First moments already differ: a_lhs = 0.5·(0.4+0.3−0.12) = 0.29,
        // a_rhs = 0.2+0.15−0.03 = 0.32 (the shared `g` got double-counted as
        // if independent).
        assert!((lhs.a() - 0.29).abs() < 1e-12);
        assert!((rhs.a() - 0.32).abs() < 1e-12);
        assert!(!lhs.approx_eq(&rhs, 1e-6));
    }
}
