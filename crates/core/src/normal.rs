//! Normal-distribution numerics: `Φ`, `Φ⁻¹` and `erf`.
//!
//! Implemented locally (no external deps): `erf` via the Abramowitz & Stegun
//! 7.1.26 rational approximation (|ε| ≤ 1.5e-7) and `Φ⁻¹` via Acklam's
//! piecewise rational approximation (relative |ε| ≤ 1.15e-9) — both far below
//! the statistical noise of any sampling estimate.

/// Error function `erf(x)` (Abramowitz & Stegun 7.1.26, with one sign fold).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal CDF `Φ(x)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal PDF `φ(x)`.
pub fn normal_pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Inverse standard normal CDF `Φ⁻¹(p)` for `p ∈ (0, 1)`.
///
/// Peter Acklam's algorithm: a piecewise rational approximation (central and
/// tail regions) with relative error below 1.15e-9 — already more accurate
/// than the A&S CDF above, so no iterative refinement against it is applied
/// (refining against a less accurate CDF would *worsen* the result).
/// Returns `±INFINITY` at `p ∈ {0, 1}` and NaN outside `[0, 1]`.
#[allow(clippy::excessive_precision)] // published Acklam coefficients, kept verbatim
pub fn inv_normal_cdf(p: f64) -> f64 {
    if p.is_nan() || !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }

    // Coefficients for the central region rational approximation.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e+01,
        2.209_460_984_245_205e+02,
        -2.759_285_104_469_687e+02,
        1.383_577_518_672_690e+02,
        -3.066_479_806_614_716e+01,
        2.506_628_277_459_239e+00,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e+01,
        1.615_858_368_580_409e+02,
        -1.556_989_798_598_866e+02,
        6.680_131_188_771_972e+01,
        -1.328_068_155_288_572e+01,
    ];
    // Coefficients for the tail regions.
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-03,
        -3.223_964_580_411_365e-01,
        -2.400_758_277_161_838e+00,
        -2.549_732_539_343_734e+00,
        4.374_664_141_464_968e+00,
        2.938_163_982_698_783e+00,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-03,
        3.224_671_290_700_398e-01,
        2.445_134_137_142_996e+00,
        3.754_408_661_907_416e+00,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Reference values from standard tables.
        assert!((erf(0.0)).abs() < 2e-7);
        assert!((erf(1.0) - 0.842_700_792_949_715).abs() < 2e-7);
        assert!((erf(2.0) - 0.995_322_265_018_953).abs() < 2e-7);
        assert!((erf(-1.0) + 0.842_700_792_949_715).abs() < 2e-7);
    }

    #[test]
    fn cdf_symmetry_and_known_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-4);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-4);
        for x in [-3.0, -1.0, 0.3, 2.5] {
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn inverse_cdf_known_quantiles() {
        // The 1.96 constant the paper's 95% interval uses.
        assert!((inv_normal_cdf(0.975) - 1.959_963_984_540_054).abs() < 1e-6);
        assert!((inv_normal_cdf(0.95) - 1.644_853_626_951_472).abs() < 1e-6);
        assert!((inv_normal_cdf(0.5)).abs() < 1e-8);
        assert!((inv_normal_cdf(0.05) + 1.644_853_626_951_472).abs() < 1e-6);
    }

    #[test]
    fn inverse_roundtrip() {
        for p in [1e-6, 1e-3, 0.01, 0.2, 0.5, 0.8, 0.99, 0.999, 1.0 - 1e-6] {
            let x = inv_normal_cdf(p);
            assert!(
                (normal_cdf(x) - p).abs() < 1e-7,
                "p={p}, x={x}, cdf={}",
                normal_cdf(x)
            );
        }
    }

    #[test]
    fn edge_cases() {
        assert_eq!(inv_normal_cdf(0.0), f64::NEG_INFINITY);
        assert_eq!(inv_normal_cdf(1.0), f64::INFINITY);
        assert!(inv_normal_cdf(-0.1).is_nan());
        assert!(inv_normal_cdf(1.1).is_nan());
        assert!(inv_normal_cdf(f64::NAN).is_nan());
    }

    #[test]
    fn pdf_integrates_to_one_roughly() {
        let mut sum = 0.0;
        let h = 0.001;
        let mut x = -8.0;
        while x < 8.0 {
            sum += normal_pdf(x) * h;
            x += h;
        }
        assert!((sum - 1.0).abs() < 1e-4, "integral = {sum}");
    }
}
