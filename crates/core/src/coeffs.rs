//! Möbius/zeta transforms over the subset lattice.
//!
//! Theorem 1 needs `c_S = Σ_{T⊆S} (−1)^{|S\T|} b_T` (the Möbius transform of
//! the pair-probability table `b̄`), and the unbiased `Ŷ_S` recursion of
//! Section 6.3 needs `d_{S,V} = Σ_{W⊆V} (−1)^{|V\W|} b_{S∪W}` for every `S`
//! and `V ⊆ S^c`. Both are computed here.
//!
//! The in-place transforms run in `O(2ⁿ·n)`; a direct `O(4ⁿ)` evaluation is
//! kept (and differential-tested) as `moebius_transform_naive` because the
//! fast version is the one numeric kernel everything else trusts.

use crate::relset::RelSet;

/// Subset Möbius transform: `out[S] = Σ_{T⊆S} (−1)^{|S\T|} f[T]`.
///
/// `f.len()` must be a power of two (`2ⁿ`).
pub fn moebius_transform(f: &[f64]) -> Vec<f64> {
    let mut out = f.to_vec();
    let n = log2_len(f.len());
    for i in 0..n {
        let bit = 1usize << i;
        for s in 0..f.len() {
            if s & bit != 0 {
                out[s] -= out[s ^ bit];
            }
        }
    }
    out
}

/// Subset zeta transform (inverse of [`moebius_transform`]):
/// `out[S] = Σ_{T⊆S} f[T]`.
pub fn zeta_transform(f: &[f64]) -> Vec<f64> {
    let mut out = f.to_vec();
    let n = log2_len(f.len());
    for i in 0..n {
        let bit = 1usize << i;
        for s in 0..f.len() {
            if s & bit != 0 {
                out[s] += out[s ^ bit];
            }
        }
    }
    out
}

/// Direct `O(4ⁿ)` Möbius transform, for differential testing.
pub fn moebius_transform_naive(f: &[f64]) -> Vec<f64> {
    let n = log2_len(f.len());
    debug_assert!(n <= 32);
    (0..f.len())
        .map(|s| {
            let set = RelSet::from_bits(s as u32);
            let mut acc = 0.0;
            for t in set.subsets() {
                let sign = if (set.len() - t.len()).is_multiple_of(2) {
                    1.0
                } else {
                    -1.0
                };
                acc += sign * f[t.index()];
            }
            acc
        })
        .collect()
}

/// All `d_{S,V}` coefficients of the unbiased `Ŷ_S` recursion:
/// `d_{S,V} = Σ_{W⊆V} (−1)^{|V\W|} b_{S∪W}` for `V ⊆ S^c`.
///
/// Returns, for the given `S`, a dense table indexed by `V.index()` (entries
/// with `V ⊄ S^c` are zero). `E[Y_S] = Σ_{V⊆S^c} d_{S,V} · y_{S∪V}` — the
/// derivation is in DESIGN.md §1.
pub fn d_coeffs_for(b: &[f64], s: RelSet, n: usize) -> Vec<f64> {
    let size = 1usize << n;
    debug_assert_eq!(b.len(), size);
    let comp = s.complement(n);
    let mut d = vec![0.0; size];
    for v in comp.subsets() {
        let mut acc = 0.0;
        for w in v.subsets() {
            let sign = if (v.len() - w.len()).is_multiple_of(2) {
                1.0
            } else {
                -1.0
            };
            acc += sign * b[s.union(w).index()];
        }
        d[v.index()] = acc;
    }
    d
}

fn log2_len(len: usize) -> usize {
    assert!(len.is_power_of_two(), "table length {len} not a power of 2");
    len.trailing_zeros() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-12, "{x} != {y}");
        }
    }

    #[test]
    fn moebius_matches_naive() {
        // 3 relations, arbitrary values.
        let b: Vec<f64> = (0..8)
            .map(|i| (i as f64 * 0.37 + 0.11).sin().abs())
            .collect();
        close(&moebius_transform(&b), &moebius_transform_naive(&b));
    }

    #[test]
    fn moebius_zeta_roundtrip() {
        let b: Vec<f64> = (0..16).map(|i| (i as f64).cos()).collect();
        close(&zeta_transform(&moebius_transform(&b)), &b);
        close(&moebius_transform(&zeta_transform(&b)), &b);
    }

    #[test]
    fn bernoulli_c_coefficients() {
        // n=1 Bernoulli(p): b = [p², p]; c_∅ = p², c_{1} = p − p².
        let p = 0.1;
        let c = moebius_transform(&[p * p, p]);
        assert!((c[0] - p * p).abs() < 1e-15);
        assert!((c[1] - (p - p * p)).abs() < 1e-15);
    }

    #[test]
    fn c_sums_telescope_to_b_full() {
        // Σ_S c_S = b_full (zeta at the full set).
        let b: Vec<f64> = (0..8).map(|i| 0.1 + 0.05 * i as f64).collect();
        let c = moebius_transform(&b);
        let total: f64 = c.iter().sum();
        assert!((total - b[7]).abs() < 1e-12);
    }

    #[test]
    fn d_empty_v_is_b_s() {
        let b: Vec<f64> = (0..8).map(|i| (i as f64 + 1.0) * 0.05).collect();
        for s_bits in 0..8u32 {
            let s = RelSet::from_bits(s_bits);
            let d = d_coeffs_for(&b, s, 3);
            assert!((d[0] - b[s.index()]).abs() < 1e-15);
        }
    }

    #[test]
    fn d_full_s_has_only_empty_v() {
        let b: Vec<f64> = (0..4).map(|i| (i as f64 + 1.0) * 0.1).collect();
        let s = RelSet::full(2);
        let d = d_coeffs_for(&b, s, 2);
        assert!((d[0] - b[3]).abs() < 1e-15);
        // All other entries must be zero (V must be ⊆ S^c = ∅).
        assert_eq!(&d[1..], &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn d_matches_hand_computation_single_rel() {
        // n=1, S=∅: d_{∅,∅} = b_∅, d_{∅,{1}} = b_{1} − b_∅.
        let p = 0.3;
        let b = vec![p * p, p];
        let d = d_coeffs_for(&b, RelSet::EMPTY, 1);
        assert!((d[0] - p * p).abs() < 1e-15);
        assert!((d[1] - (p - p * p)).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "not a power of 2")]
    fn non_power_of_two_rejected() {
        moebius_transform(&[1.0, 2.0, 3.0]);
    }
}
