//! Lineage-driven Bernoulli sub-sampling — the Section 7 efficiency device.
//!
//! Estimating the `Y_S` terms costs a pass of `2ⁿ` group-bys over the whole
//! result; Section 7 observes that a *sub-sample* of ~10 000 result tuples
//! suffices for the `Ŷ_S` (the point estimate still uses every tuple). For
//! the sub-sample to be analyzable it must itself be a GUS method, which the
//! paper achieves with **pseudo-random functions combining a per-relation
//! seed with the tuple's lineage**: the same base tuple always receives the
//! same keep/drop decision, wherever it appears in the result. The memory
//! cost is one seed per base relation.
//!
//! [`LineageBernoulli`] implements exactly that: relation `i` keeps lineage
//! id `x` iff `splitmix64(seed_i, x) < p_i·2⁶⁴`; a result tuple survives iff
//! all of its base components survive. Its GUS translation is the
//! multi-dimensional Bernoulli of Example 5 (composition, Proposition 9),
//! and the analysis of "sub-sample of a sampled plan" is compaction
//! (Proposition 8) — the Figure 5 pipeline.

use std::sync::Arc;

use crate::error::CoreError;
use crate::hash::splitmix64;
use crate::params::GusParams;
use crate::relset::{LineageSchema, RelSet};
use crate::Result;

/// A deterministic multi-dimensional Bernoulli filter on lineage.
#[derive(Debug, Clone)]
pub struct LineageBernoulli {
    schema: Arc<LineageSchema>,
    /// Per-relation keep probability (1.0 = relation not sub-sampled).
    probs: Vec<f64>,
    /// Per-relation seed for the pseudo-random function.
    seeds: Vec<u64>,
    /// Per-relation keep threshold: keep iff `hash < threshold`
    /// (`threshold = p·2⁶⁴`, saturating).
    thresholds: Vec<u64>,
}

impl LineageBernoulli {
    /// Build a filter over `schema` with per-relation probabilities `probs`
    /// (aligned with the schema's bit order), derived deterministically from
    /// a master `seed`.
    pub fn new(schema: Arc<LineageSchema>, probs: &[f64], seed: u64) -> Result<LineageBernoulli> {
        if probs.len() != schema.n() {
            return Err(CoreError::DimensionMismatch {
                expected: schema.n(),
                got: probs.len(),
            });
        }
        for (i, &p) in probs.iter().enumerate() {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(CoreError::InvalidParam(format!(
                    "sub-sampling probability p[{i}] = {p} not in [0,1]"
                )));
            }
        }
        let seeds: Vec<u64> = (0..schema.n() as u64)
            .map(|i| splitmix64(seed ^ splitmix64(i.wrapping_mul(0x2545_F491_4F6C_DD1D))))
            .collect();
        let thresholds = probs.iter().map(|&p| prob_to_threshold(p)).collect();
        Ok(LineageBernoulli {
            schema,
            probs: probs.to_vec(),
            seeds,
            thresholds,
        })
    }

    /// Uniform probability on every relation.
    pub fn uniform(schema: Arc<LineageSchema>, p: f64, seed: u64) -> Result<LineageBernoulli> {
        let probs = vec![p; schema.n()];
        LineageBernoulli::new(schema, &probs, seed)
    }

    /// The lineage schema.
    pub fn schema(&self) -> &Arc<LineageSchema> {
        &self.schema
    }

    /// Per-relation probabilities.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Keep/drop decision for one base tuple of relation `rel`.
    ///
    /// Deterministic in `(seed, rel, lineage id)` — the GUS filter property:
    /// "if it decides to eliminate a tuple from a base relation, it has to do
    /// so in all result tuples in which it appears".
    #[inline]
    pub fn keeps_component(&self, rel: usize, lineage_id: u64) -> bool {
        splitmix64(self.seeds[rel] ^ splitmix64(lineage_id)) < self.thresholds[rel]
    }

    /// Keep/drop decision for a whole result tuple (all components must
    /// survive).
    #[inline]
    pub fn keeps(&self, lineage: &[u64]) -> bool {
        debug_assert_eq!(lineage.len(), self.schema.n());
        lineage
            .iter()
            .enumerate()
            .all(|(i, &id)| self.keeps_component(i, id))
    }

    /// The GUS translation: the composition (Proposition 9) of per-relation
    /// Bernoulli methods — Example 5's multi-dimensional Bernoulli.
    ///
    /// `a = Π pᵢ`, `b_T = Π_{i∈T} pᵢ · Π_{i∉T} pᵢ²`.
    pub fn gus(&self) -> GusParams {
        let n = self.schema.n();
        let mut b = vec![0.0; 1usize << n];
        let mut a = 1.0;
        for &p in &self.probs {
            a *= p;
        }
        for (t_idx, slot) in b.iter_mut().enumerate() {
            let t = RelSet::from_bits(t_idx as u32);
            let mut v = 1.0;
            for (i, &p) in self.probs.iter().enumerate() {
                v *= if t.contains(i) { p } else { p * p };
            }
            *slot = v;
        }
        GusParams::new(self.schema.clone(), a, b).expect("probabilities validated on construction")
    }
}

fn prob_to_threshold(p: f64) -> u64 {
    if p >= 1.0 {
        u64::MAX
    } else {
        // p·2⁶⁴, computed in f64 (exact enough: threshold error ~2⁻⁵³·2⁶⁴
        // corresponds to a probability error ~1e-16).
        (p * (u64::MAX as f64 + 1.0)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema_lo() -> Arc<LineageSchema> {
        LineageSchema::new(&["l", "o"]).unwrap()
    }

    #[test]
    fn deterministic_decisions() {
        let f = LineageBernoulli::uniform(schema_lo(), 0.5, 42).unwrap();
        for id in 0..100u64 {
            assert_eq!(f.keeps_component(0, id), f.keeps_component(0, id));
        }
        // keeps() = AND of components.
        for l in 0..20u64 {
            for o in 0..20u64 {
                assert_eq!(
                    f.keeps(&[l, o]),
                    f.keeps_component(0, l) && f.keeps_component(1, o)
                );
            }
        }
    }

    #[test]
    fn different_seeds_give_different_samples() {
        let f1 = LineageBernoulli::uniform(schema_lo(), 0.5, 1).unwrap();
        let f2 = LineageBernoulli::uniform(schema_lo(), 0.5, 2).unwrap();
        let diff = (0..1000u64)
            .filter(|&i| f1.keeps_component(0, i) != f2.keeps_component(0, i))
            .count();
        assert!(diff > 300, "only {diff} decisions differ");
    }

    #[test]
    fn keep_rate_approximates_probability() {
        let f = LineageBernoulli::uniform(schema_lo(), 0.3, 7).unwrap();
        let kept = (0..100_000u64).filter(|&i| f.keeps_component(1, i)).count();
        let rate = kept as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn probability_one_keeps_everything() {
        let f = LineageBernoulli::new(schema_lo(), &[1.0, 0.5], 3).unwrap();
        assert!((0..10_000u64).all(|i| f.keeps_component(0, i)));
    }

    #[test]
    fn probability_zero_keeps_nothing() {
        let f = LineageBernoulli::new(schema_lo(), &[0.0, 0.5], 3).unwrap();
        assert!((0..10_000u64).all(|i| !f.keeps_component(0, i)));
    }

    #[test]
    fn gus_matches_example5() {
        // Example 5: B(0.2, 0.3) → a=0.06, b_∅=0.0036, b_o=0.012, b_l=0.018,
        // b_lo=0.06.
        let f = LineageBernoulli::new(schema_lo(), &[0.2, 0.3], 0).unwrap();
        let g = f.gus();
        let b = |names: &[&str]| g.b_named(names).unwrap();
        assert!((g.a() - 0.06).abs() < 1e-12);
        assert!((b(&[]) - 0.0036).abs() < 1e-12);
        assert!((b(&["o"]) - 0.012).abs() < 1e-12);
        assert!((b(&["l"]) - 0.018).abs() < 1e-12);
        assert!((b(&["l", "o"]) - 0.06).abs() < 1e-12);
        assert!(g.is_proper());
    }

    #[test]
    fn gus_equals_composition_of_bernoullis() {
        let f = LineageBernoulli::new(schema_lo(), &[0.2, 0.3], 0).unwrap();
        let composed = GusParams::bernoulli("l", 0.2)
            .unwrap()
            .compose(&GusParams::bernoulli("o", 0.3).unwrap())
            .unwrap();
        assert!(f.gus().approx_eq(&composed, 1e-12));
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(LineageBernoulli::uniform(schema_lo(), 1.5, 0).is_err());
        assert!(LineageBernoulli::uniform(schema_lo(), -0.1, 0).is_err());
        assert!(LineageBernoulli::new(schema_lo(), &[0.5], 0).is_err());
    }

    #[test]
    fn joint_keep_rate_is_product() {
        let f = LineageBernoulli::new(schema_lo(), &[0.5, 0.4], 11).unwrap();
        let mut kept = 0u32;
        let trials = 40_000u64;
        for i in 0..trials {
            // Distinct ids per relation so decisions are independent.
            if f.keeps(&[i, i + 1_000_000]) {
                kept += 1;
            }
        }
        let rate = kept as f64 / trials as f64;
        assert!((rate - 0.2).abs() < 0.01, "rate = {rate}");
    }
}
