//! The **SBox** — the paper's statistical estimator component (Section 6).
//!
//! The SBox sits between the query plan and the aggregate. It consumes, for
//! every result tuple, its **lineage** (one id per base relation) and its
//! aggregate value(s), plus the parameters of the single top-level GUS
//! quasi-operator produced by the SOA rewriter. From these it computes:
//!
//! 1. the unbiased point estimate `X = (1/a) Σ f(t)` (Theorem 1),
//! 2. the sample statistics `Y_S` (grouped second moments),
//! 3. the unbiased moment estimates `Ŷ_S` via the Section 6.3 recursion,
//! 4. the variance estimate `σ̂² = Σ_S (c_S/a²)·Ŷ_S − Ŷ_∅`, and
//! 5. normal / Chebyshev confidence intervals and `QUANTILE` bounds.
//!
//! The SBox is aggregate-vector-valued: pushing `k` values per tuple yields a
//! `k×k` covariance estimate, which powers the delta-method AVG (see
//! [`crate::delta`]).

use std::sync::Arc;

use crate::ci::{chebyshev_ci, normal_ci, quantile_bound, ConfidenceInterval};
use crate::error::CoreError;
use crate::moments::{GroupedMoments, MomentMatrix, Moments};
use crate::params::GusParams;
use crate::relset::{LineageSchema, RelSet};
use crate::Result;

/// Streaming estimator for SUM-like aggregates under a GUS sampling method.
#[derive(Debug)]
pub struct SBox {
    gus: GusParams,
    acc: GroupedMoments,
}

impl SBox {
    /// An SBox for a single SUM-like aggregate under `gus`.
    pub fn new(gus: GusParams) -> SBox {
        SBox::with_dims(gus, 1)
    }

    /// An SBox tracking `dims` aggregates simultaneously (shared lineage).
    pub fn with_dims(gus: GusParams, dims: usize) -> SBox {
        let n = gus.n();
        SBox {
            gus,
            acc: GroupedMoments::new(n, dims),
        }
    }

    /// The GUS parameters this SBox analyzes under.
    pub fn gus(&self) -> &GusParams {
        &self.gus
    }

    /// Consume one result tuple: lineage ids (aligned with the GUS lineage
    /// schema) and the aggregate vector.
    pub fn push(&mut self, lineage: &[u64], f: &[f64]) -> Result<()> {
        self.acc.push(lineage, f)
    }

    /// Scalar convenience for `dims == 1`.
    pub fn push_scalar(&mut self, lineage: &[u64], f: f64) -> Result<()> {
        self.acc.push_scalar(lineage, f)
    }

    /// Finish consuming tuples and produce the estimate report.
    pub fn finish(self) -> Result<EstimateReport> {
        let gus = self.gus;
        let sample = self.acc.finish();
        estimate_from_sample_moments(&gus, &sample)
    }
}

/// Compute an [`EstimateReport`] from already-accumulated *sample* moments.
///
/// Split out of [`SBox::finish`] so callers that keep the raw moments around
/// (e.g. the Section 7 sub-sampled estimator) can reuse them.
pub fn estimate_from_sample_moments(gus: &GusParams, sample: &Moments) -> Result<EstimateReport> {
    if sample.n != gus.n() {
        return Err(CoreError::DimensionMismatch {
            expected: gus.n(),
            got: sample.n,
        });
    }
    let a = gus.a();
    if a <= 0.0 {
        return Err(CoreError::Degenerate(
            "GUS a = 0: nothing can be estimated from a sampler that blocks everything".into(),
        ));
    }
    let estimate: Vec<f64> = sample.total.iter().map(|t| t / a).collect();
    let y_hat = unbiased_y_hats(gus, sample);
    let covariance = y_hat
        .as_ref()
        .ok()
        .map(|yh| covariance_from_y(gus, yh, sample.dims));
    Ok(EstimateReport {
        schema: gus.schema().clone(),
        gus: gus.clone(),
        estimate,
        covariance,
        y_hat: y_hat.ok(),
        dims: sample.dims,
        m: sample.count,
    })
}

/// The Section 6.3 recursion: unbiased `Ŷ_S` from sample `Y_S`.
///
/// Processes `S` in decreasing cardinality:
/// `Ŷ_S = (Y_S − Σ_{∅≠V⊆S^c} d_{S,V}·Ŷ_{S∪V}) / b_S`, starting from
/// `Ŷ_full = Y_full / a`. Fails with [`CoreError::Degenerate`] when some
/// `b_S = 0` (e.g. a WOR sample of size 1: a single draw carries no variance
/// information), in which case the point estimate is still available.
pub fn unbiased_y_hats(gus: &GusParams, sample: &Moments) -> Result<Vec<MomentMatrix>> {
    let n = gus.n();
    let size = 1usize << n;
    let mut order: Vec<usize> = (0..size).collect();
    order.sort_by_key(|s| std::cmp::Reverse(s.count_ones()));
    let mut y_hat: Vec<Option<MomentMatrix>> = vec![None; size];
    for s_idx in order {
        let s = RelSet::from_bits(s_idx as u32);
        let d = gus.d_coeffs_for(s);
        let b_s = d[RelSet::EMPTY.index()];
        if b_s <= 0.0 {
            return Err(CoreError::Degenerate(format!(
                "b_{} = 0: the pair probability needed to unbias Y is zero",
                gus.schema().display_set(s)
            )));
        }
        let mut acc = sample.y[s_idx].clone();
        for v in s.complement(n).subsets() {
            if v.is_empty() {
                continue;
            }
            let dv = d[v.index()];
            if dv != 0.0 {
                let superset = s.union(v).index();
                let yh = y_hat[superset]
                    .as_ref()
                    .expect("supersets are processed before subsets");
                acc.add_scaled(yh, -dv);
            }
        }
        acc.scale(1.0 / b_s);
        y_hat[s_idx] = Some(acc);
    }
    Ok(y_hat
        .into_iter()
        .map(|m| m.expect("all computed"))
        .collect())
}

/// Theorem 1 variance/covariance from moment matrices (exact if `y` are the
/// population moments, estimated if they are `Ŷ_S`):
/// `Cov[p,q] = Σ_S (c_S/a²)·y_S[p,q] − y_∅[p,q]`.
pub fn covariance_from_y(gus: &GusParams, y: &[MomentMatrix], dims: usize) -> MomentMatrix {
    let c = gus.c_coeffs();
    let a2 = gus.a() * gus.a();
    let mut cov = MomentMatrix::zero(dims);
    for (s_idx, y_s) in y.iter().enumerate() {
        cov.add_scaled(y_s, c[s_idx] / a2);
    }
    cov.add_scaled(&y[RelSet::EMPTY.index()], -1.0);
    cov
}

/// Exact (oracle) variance of dimension `dim` given **population** moments —
/// the right-hand side of Theorem 1 evaluated exactly. Used by tests and the
/// oracle baseline.
pub fn exact_variance(gus: &GusParams, population: &Moments, dim: usize) -> f64 {
    covariance_from_y(gus, &population.y, population.dims).get(dim, dim)
}

/// The SBox output: point estimates, estimated covariance, and the unbiased
/// `Ŷ_S` (exposed because Section 8's "choosing sampling parameters"
/// application plugs *other* schemes' coefficients into the same `Ŷ_S`).
#[derive(Debug, Clone)]
pub struct EstimateReport {
    schema: Arc<LineageSchema>,
    gus: GusParams,
    /// Unbiased point estimate per aggregate dimension.
    pub estimate: Vec<f64>,
    /// Estimated covariance matrix of the estimators, when estimable.
    pub covariance: Option<MomentMatrix>,
    /// Unbiased estimates `Ŷ_S` of the population `y_S`, when estimable.
    pub y_hat: Option<Vec<MomentMatrix>>,
    /// Aggregate dimension.
    pub dims: usize,
    /// Number of result tuples consumed.
    pub m: u64,
}

impl EstimateReport {
    /// Assemble a report from independently computed parts.
    ///
    /// Needed by the Section 7 sub-sampled estimator, where the *point
    /// estimate* comes from the full sample under the original GUS while the
    /// `Ŷ_S`/covariance come from a sub-sample under the compacted GUS.
    pub fn from_parts(
        gus: GusParams,
        estimate: Vec<f64>,
        covariance: Option<MomentMatrix>,
        y_hat: Option<Vec<MomentMatrix>>,
        dims: usize,
        m: u64,
    ) -> EstimateReport {
        EstimateReport {
            schema: gus.schema().clone(),
            gus,
            estimate,
            covariance,
            y_hat,
            dims,
            m,
        }
    }

    /// The lineage schema of the analysis.
    pub fn schema(&self) -> &Arc<LineageSchema> {
        &self.schema
    }

    /// The GUS the estimate was produced under.
    pub fn gus(&self) -> &GusParams {
        &self.gus
    }

    /// Estimated variance of dimension `dim`.
    ///
    /// Negative values (possible in small samples, since `σ̂²` is unbiased
    /// but not nonnegative) are clamped to 0 for interval construction; the
    /// raw value is available via [`EstimateReport::raw_variance`].
    pub fn variance(&self, dim: usize) -> Result<f64> {
        Ok(self.raw_variance(dim)?.max(0.0))
    }

    /// Unclamped variance estimate (can be slightly negative by chance).
    pub fn raw_variance(&self, dim: usize) -> Result<f64> {
        let cov = self.covariance.as_ref().ok_or_else(|| {
            CoreError::Degenerate("variance is not estimable for this GUS/sample".into())
        })?;
        Ok(cov.get(dim, dim))
    }

    /// Estimated standard error of dimension `dim`.
    pub fn std_error(&self, dim: usize) -> Result<f64> {
        Ok(self.variance(dim)?.sqrt())
    }

    /// Two-sided normal CI for dimension `dim`.
    pub fn ci_normal(&self, dim: usize, level: f64) -> Result<ConfidenceInterval> {
        normal_ci(self.estimate[dim], self.variance(dim)?, level)
    }

    /// Two-sided Chebyshev CI for dimension `dim`.
    pub fn ci_chebyshev(&self, dim: usize, level: f64) -> Result<ConfidenceInterval> {
        chebyshev_ci(self.estimate[dim], self.variance(dim)?, level)
    }

    /// One-sided quantile bound (the `QUANTILE(SUM(e), q)` view).
    pub fn quantile(&self, dim: usize, q: f64) -> Result<f64> {
        quantile_bound(self.estimate[dim], self.variance(dim)?, q)
    }

    /// Predict the variance this query would have under a **different** GUS
    /// method (same lineage schema) — Section 8's "choosing sampling
    /// parameters": the unbiased `Ŷ_S` from one sampling instance are valid
    /// estimates of the population `y_S`, so any other scheme's coefficients
    /// can be plugged in.
    pub fn predict_variance(&self, other: &GusParams, dim: usize) -> Result<f64> {
        if other.schema() != &self.schema {
            return Err(CoreError::SchemaMismatch {
                left: self.schema.to_string(),
                right: other.schema().to_string(),
            });
        }
        let y_hat = self.y_hat.as_ref().ok_or_else(|| {
            CoreError::Degenerate("Ŷ_S unavailable; variance prediction impossible".into())
        })?;
        if other.a() <= 0.0 {
            return Err(CoreError::Degenerate("target GUS has a = 0".into()));
        }
        Ok(covariance_from_y(other, y_hat, self.dims)
            .get(dim, dim)
            .max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::GroupedMoments;

    /// Population: single relation, values 1..=N.
    fn population_moments(n_rows: u64) -> Moments {
        let mut acc = GroupedMoments::new(1, 1);
        for i in 1..=n_rows {
            acc.push_scalar(&[i], i as f64).unwrap();
        }
        acc.finish()
    }

    #[test]
    fn exact_variance_matches_bernoulli_closed_form() {
        // Var[(1/p)Σ_{sampled} f] = ((1−p)/p)·Σ f².
        let p = 0.2;
        let pop = population_moments(100);
        let gus = GusParams::bernoulli("r", p).unwrap();
        let sum_sq: f64 = (1..=100u64).map(|i| (i * i) as f64).sum();
        let v = exact_variance(&gus, &pop, 0);
        let expect = (1.0 - p) / p * sum_sq;
        assert!((v - expect).abs() < 1e-6 * expect, "{v} vs {expect}");
    }

    #[test]
    fn exact_variance_matches_wor_closed_form() {
        // Var = (N−n)/(n(N−1)) · (N·y_1 − y_∅).
        let big_n = 50u64;
        let n = 10u64;
        let pop = population_moments(big_n);
        let gus = GusParams::wor("r", n, big_n).unwrap();
        let y1: f64 = (1..=big_n).map(|i| (i * i) as f64).sum();
        let y0: f64 = {
            let s: f64 = (1..=big_n).map(|i| i as f64).sum();
            s * s
        };
        let expect =
            (big_n - n) as f64 / (n as f64 * (big_n - 1) as f64) * (big_n as f64 * y1 - y0);
        let v = exact_variance(&gus, &pop, 0);
        assert!(
            (v - expect).abs() < 1e-6 * expect.abs().max(1.0),
            "{v} vs {expect}"
        );
    }

    #[test]
    fn identity_gus_gives_exact_answer_zero_variance() {
        let schema = LineageSchema::single("r");
        let gus = GusParams::identity(schema);
        let mut sbox = SBox::new(gus);
        for i in 1..=10u64 {
            sbox.push_scalar(&[i], i as f64).unwrap();
        }
        let rep = sbox.finish().unwrap();
        assert!((rep.estimate[0] - 55.0).abs() < 1e-9);
        assert!(rep.variance(0).unwrap().abs() < 1e-6);
        let ci = rep.ci_normal(0, 0.95).unwrap();
        assert!(ci.width() < 1e-3);
    }

    #[test]
    fn estimate_scales_by_inverse_a() {
        let gus = GusParams::bernoulli("r", 0.5).unwrap();
        let mut sbox = SBox::new(gus);
        sbox.push_scalar(&[1], 3.0).unwrap();
        sbox.push_scalar(&[2], 5.0).unwrap();
        let rep = sbox.finish().unwrap();
        assert!((rep.estimate[0] - 16.0).abs() < 1e-12); // (3+5)/0.5
        assert_eq!(rep.m, 2);
    }

    #[test]
    fn null_gus_cannot_estimate() {
        let gus = GusParams::null(LineageSchema::single("r"));
        let sbox = SBox::new(gus);
        assert!(matches!(sbox.finish(), Err(CoreError::Degenerate(_))));
    }

    #[test]
    fn wor_size_one_estimate_ok_variance_degenerate() {
        let gus = GusParams::wor("r", 1, 100).unwrap();
        let mut sbox = SBox::new(gus);
        sbox.push_scalar(&[42], 7.0).unwrap();
        let rep = sbox.finish().unwrap();
        assert!((rep.estimate[0] - 700.0).abs() < 1e-9);
        assert!(rep.covariance.is_none());
        assert!(rep.variance(0).is_err());
        assert!(rep.ci_normal(0, 0.95).is_err());
    }

    #[test]
    fn y_hat_unbiased_under_full_inclusion() {
        // With a = 1 Bernoulli, Ŷ_S must equal the (now fully observed) y_S.
        let gus = GusParams::bernoulli("r", 1.0).unwrap();
        let mut sbox = SBox::new(gus);
        for i in 1..=5u64 {
            sbox.push_scalar(&[i], i as f64).unwrap();
        }
        let rep = sbox.finish().unwrap();
        let yh = rep.y_hat.unwrap();
        // y_∅ = 15² = 225, y_{r} = 1+4+9+16+25 = 55.
        assert!((yh[0].get(0, 0) - 225.0).abs() < 1e-9);
        assert!((yh[1].get(0, 0) - 55.0).abs() < 1e-9);
    }

    #[test]
    fn predict_variance_recovers_own_variance() {
        let gus = GusParams::bernoulli("r", 0.5).unwrap();
        let mut sbox = SBox::new(gus.clone());
        for i in 1..=50u64 {
            if i % 2 == 0 {
                sbox.push_scalar(&[i], i as f64).unwrap();
            }
        }
        let rep = sbox.finish().unwrap();
        let own = rep.variance(0).unwrap();
        let predicted = rep.predict_variance(&gus, 0).unwrap();
        assert!((own - predicted).abs() < 1e-9 * own.max(1.0));
    }

    #[test]
    fn predict_variance_schema_mismatch_rejected() {
        let gus = GusParams::bernoulli("r", 0.5).unwrap();
        let mut sbox = SBox::new(gus);
        sbox.push_scalar(&[1], 1.0).unwrap();
        let rep = sbox.finish().unwrap();
        let other = GusParams::bernoulli("s", 0.5).unwrap();
        assert!(rep.predict_variance(&other, 0).is_err());
    }

    #[test]
    fn lineage_arity_mismatch_rejected() {
        let gl = GusParams::bernoulli("l", 0.5).unwrap();
        let go = GusParams::bernoulli("o", 0.5).unwrap();
        let mut sbox = SBox::new(gl.join(&go).unwrap());
        assert!(sbox.push_scalar(&[1], 1.0).is_err());
        assert!(sbox.push_scalar(&[1, 2], 1.0).is_ok());
    }

    #[test]
    fn empty_sample_gives_zero_estimate() {
        let gus = GusParams::bernoulli("r", 0.5).unwrap();
        let rep = SBox::new(gus).finish().unwrap();
        assert_eq!(rep.estimate[0], 0.0);
        assert_eq!(rep.variance(0).unwrap(), 0.0);
        assert_eq!(rep.m, 0);
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let gus = GusParams::bernoulli("r", 0.5).unwrap();
        let mut sbox = SBox::new(gus);
        for i in 1..=20u64 {
            sbox.push_scalar(&[i], 1.0).unwrap();
        }
        let rep = sbox.finish().unwrap();
        let q05 = rep.quantile(0, 0.05).unwrap();
        let q50 = rep.quantile(0, 0.50).unwrap();
        let q95 = rep.quantile(0, 0.95).unwrap();
        assert!(q05 < q50 && q50 < q95);
        // z(0.5) from the rational approximation is ~1e-9, not exactly 0.
        assert!((q50 - rep.estimate[0]).abs() < 1e-6 * (1.0 + rep.estimate[0].abs()));
    }
}
