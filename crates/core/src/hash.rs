//! Hashing utilities: a fast FxHash-style hasher for lineage grouping and a
//! SplitMix64 bit mixer used both for group fingerprints and for the
//! pseudo-random lineage functions of Section 7.
//!
//! The default `std` hasher (SipHash 1-3) is DoS-resistant but slow for the
//! short integer keys the estimator hashes billions of times; an FxHash-style
//! multiply-xor hasher is the standard replacement in this situation (see the
//! Rust Performance Book's Hashing chapter). Implemented locally (~30 lines)
//! to stay within the approved dependency set.

use std::hash::{BuildHasherDefault, Hasher};

/// Firefox-style (Fx) hasher: wrapping multiply by a golden-ratio constant
/// with rotate-xor mixing. Not DoS-resistant; do not expose to adversarial
/// keys. All keys here are internally generated lineage fingerprints.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_word(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_word(i as u64);
        self.add_word((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_word(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`], for use with `HashMap::with_hasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// SplitMix64 finalizer: a high-quality 64-bit bit mixer (Steele et al.).
///
/// Used to turn `(seed, lineage id)` pairs into uniform 64-bit words for the
/// pseudo-random sub-sampling functions of Section 7 ("pseudo-random
/// functions that combine seeds and lineage to provide a \[0,1\] number"), and
/// to build the 128-bit group fingerprints of the `y_S` accumulator.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Two independent 64-bit mixes of `(salt, id)` packed into a `u128`
/// fingerprint. With 128 bits, collision probability among `m` distinct keys
/// is ≈ `m²/2^129` — negligible for any realistic result size.
#[inline]
pub fn fingerprint128(salt: u64, id: u64) -> u128 {
    let lo = splitmix64(id ^ splitmix64(salt));
    let hi = splitmix64(id.wrapping_add(0x9e37_79b9_7f4a_7c15) ^ splitmix64(salt ^ 0xdead_beef));
    ((hi as u128) << 64) | lo as u128
}

/// Per-relation fingerprint salts, shared by every moment accumulator:
/// groupings (and hence moments) computed by [`crate::GroupedMoments`],
/// [`crate::MomentAccumulator`] and shard-local instances must agree, so
/// they all derive their salts here.
pub fn rel_salts(n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| i.wrapping_mul(0xa076_1d64_78bd_642f))
        .collect()
}

/// The grouping key of subset `s`: per-relation fingerprints combined with
/// wrapping addition (commutative, so the key is set-valued; collisions stay
/// ≈ m²/2¹²⁹ because each fingerprint is already uniform).
#[inline]
pub fn subset_key(fp: &[u128], s: crate::relset::RelSet) -> u128 {
    let mut key = 0u128;
    for i in s.iter() {
        key = key.wrapping_add(fp[i]);
    }
    key
}

/// A map keyed by a 64-bit **fingerprint** of the key with stored-key
/// collision resolution: the deterministic splitmix64-finalized Fx hash of
/// the key selects a bucket of `(stored key, value)` pairs, and real key
/// equality resolves within the bucket — so a fingerprint collision costs
/// one extra comparison, never correctness. The splitmix64 finalization
/// matters: keys often hash f64 bit patterns whose entropy sits in the
/// high bits, which Fx's multiply-only mixing would leave out of the
/// map's bucket-index (low) bits.
///
/// This is the one bucket scheme shared by every group-keyed structure
/// (the grouped moment accumulators, the batch `GROUP BY` partitioner), so
/// collision/equality semantics cannot drift between them.
#[derive(Debug, Clone)]
pub struct FpMap<K, V> {
    buckets: FxHashMap<u64, Vec<(K, V)>>,
    len: usize,
}

impl<K, V> Default for FpMap<K, V> {
    fn default() -> Self {
        FpMap {
            buckets: FxHashMap::default(),
            len: 0,
        }
    }
}

impl<K: Eq + std::hash::Hash, V> FpMap<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// The deterministic key fingerprint (a fixed hasher, so independently
    /// built maps — e.g. shard accumulators — bucket identically).
    #[inline]
    pub fn fingerprint(key: &K) -> u64 {
        use std::hash::BuildHasher;
        splitmix64(FxBuildHasher::default().hash_one(key))
    }

    /// Number of entries (distinct keys).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value of `key`, if present.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.buckets
            .get(&Self::fingerprint(key))?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// The value slot of `key`, created with `make` on first touch (the
    /// key is moved in only when new — no clone on the hit path).
    pub fn get_or_insert_with(&mut self, key: K, make: impl FnOnce() -> V) -> &mut V {
        let bucket = self.buckets.entry(Self::fingerprint(&key)).or_default();
        // The collision check: match on the stored key, not the hash.
        if let Some(i) = bucket.iter().position(|(k, _)| *k == key) {
            return &mut bucket[i].1;
        }
        self.len += 1;
        bucket.push((key, make()));
        &mut bucket.last_mut().expect("just pushed").1
    }

    /// Iterate over `(key, value)` pairs, in hash order — sort the keys
    /// for deterministic output.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.buckets
            .values()
            .flat_map(|b| b.iter().map(|(k, v)| (k, v)))
    }

    /// Drain into `(key, value)` pairs ordered by key — the one sort, paid
    /// at readout instead of on every probe.
    pub fn into_sorted(self) -> Vec<(K, V)>
    where
        K: Ord,
    {
        let mut out: Vec<(K, V)> = self.buckets.into_values().flatten().collect();
        out.sort_by(|(a, _), (b, _)| a.cmp(b));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::hash::BuildHasher;

    #[test]
    fn fp_map_resolves_collisions_and_sorts_at_readout() {
        #[derive(PartialEq, Eq, PartialOrd, Ord, Clone, Debug)]
        struct SameHash(u32);
        impl std::hash::Hash for SameHash {
            fn hash<H: Hasher>(&self, state: &mut H) {
                state.write_u64(7); // every key shares one fingerprint
            }
        }
        let mut m: FpMap<SameHash, u32> = FpMap::new();
        for k in [2u32, 0, 1, 0, 2, 2] {
            *m.get_or_insert_with(SameHash(k), || 0) += 1;
        }
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(&SameHash(2)), Some(&3));
        assert_eq!(m.get(&SameHash(9)), None);
        let sorted = m.into_sorted();
        let keys: Vec<u32> = sorted.iter().map(|(k, _)| k.0).collect();
        assert_eq!(keys, vec![0, 1, 2]);
    }

    #[test]
    fn fx_hash_differs_on_different_keys() {
        let bh = FxBuildHasher::default();
        let h1 = bh.hash_one(1u64);
        let h2 = bh.hash_one(2u64);
        assert_ne!(h1, h2);
        // Deterministic.
        assert_eq!(h1, bh.hash_one(1u64));
    }

    #[test]
    fn fx_hashmap_works() {
        let mut m: FxHashMap<u128, u32> = FxHashMap::default();
        for i in 0..1000u128 {
            m.insert(i, i as u32);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&500], 500);
    }

    #[test]
    fn splitmix_is_bijective_sampling() {
        // No collisions over a small dense range (splitmix64 is a bijection).
        let outs: HashSet<u64> = (0..10_000u64).map(splitmix64).collect();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn splitmix_uniformity_rough() {
        // Top bit should be set about half the time.
        let ones = (0..100_000u64)
            .map(splitmix64)
            .filter(|x| x >> 63 == 1)
            .count();
        assert!((45_000..55_000).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn fingerprints_distinct_across_salt_and_id() {
        let mut seen = HashSet::new();
        for salt in 0..10u64 {
            for id in 0..1000u64 {
                assert!(seen.insert(fingerprint128(salt, id)));
            }
        }
    }

    #[test]
    fn bytes_path_matches_expected_behaviour() {
        // write() must consume all bytes, including a short tail chunk.
        let bh = FxBuildHasher::default();
        let h1 = bh.hash_one([1u8, 2, 3]);
        let h2 = bh.hash_one([1u8, 2, 4]);
        assert_ne!(h1, h2);
    }
}
