//! # sa-core — the sampling algebra for aggregate estimation
//!
//! A from-scratch implementation of the theory in *“A Sampling Algebra for
//! Aggregate Estimation”* (Nirkhiwale, Dobra, Jermaine; VLDB 2013):
//!
//! * **GUS parameters** ([`GusParams`]): the `(a, b̄)` description of any
//!   Generalized-Uniform-Sampling process over a [`LineageSchema`] of base
//!   relations, with constructors for the Figure 1 methods (Bernoulli, WOR)
//!   and the identity/null quasi-operators.
//! * **The algebra** (Propositions 4–9): [`GusParams::join`],
//!   [`GusParams::compact`], [`GusParams::union`], [`GusParams::compose`],
//!   and [`GusParams::embed`] — everything a plan rewriter needs to collapse
//!   a plan's sampling operators into a single top-level GUS under
//!   SOA-equivalence.
//! * **Theorem 1** machinery: Möbius coefficient transforms
//!   ([`coeffs`]), grouped second moments ([`moments`]), and the exact
//!   variance evaluator [`estimator::exact_variance`].
//! * **The SBox** ([`SBox`]): the streaming estimator of Section 6 —
//!   unbiased point estimates, the `Ŷ_S` recursion, variance/covariance,
//!   normal and Chebyshev confidence intervals, `QUANTILE` bounds, and
//!   cross-scheme variance prediction.
//! * **Section 7**: deterministic lineage-hash sub-sampling
//!   ([`LineageBernoulli`]) for cheap variance estimation.
//! * **Section 9 extension**: delta-method ratio/AVG estimation ([`delta`]).
//!
//! The crate is dependency-free and knows nothing about tables or SQL; it
//! consumes `(lineage ids, aggregate values)` streams. Higher layers
//! (`sa-plan`, `sa-exec`, `sa-sql`) provide plans, execution and parsing.
//!
//! ## Quick start
//!
//! ```
//! use sa_core::{GusParams, SBox};
//!
//! // Example 1 of the paper: Bernoulli(0.1) on lineitem joined with a
//! // WOR(1000 of 150000) sample of orders.
//! let gus = GusParams::bernoulli("lineitem", 0.1).unwrap()
//!     .join(&GusParams::wor("orders", 1000, 150_000).unwrap()).unwrap();
//! assert!((gus.a() - 6.667e-4).abs() < 1e-6);
//!
//! // Feed the (lineage, f) stream of the sampled join into the SBox:
//! let mut sbox = SBox::new(gus);
//! sbox.push_scalar(&[101, 7], 42.0).unwrap();  // (lineitem id, orders id), f
//! sbox.push_scalar(&[213, 7], 10.0).unwrap();
//! let report = sbox.finish().unwrap();
//! let ci = report.ci_normal(0, 0.95).unwrap();
//! assert!(ci.lo <= report.estimate[0] && report.estimate[0] <= ci.hi);
//! ```

#![warn(missing_docs)]

pub mod accumulator;
pub mod ci;
pub mod coeffs;
pub mod delta;
pub mod error;
pub mod estimator;
pub mod grouped_accumulator;
pub mod hash;
pub mod moments;
pub mod normal;
pub mod params;
pub mod relset;
pub mod subsample;

pub use accumulator::MomentAccumulator;
pub use ci::{chebyshev_ci, normal_ci, quantile_bound, CiMethod, ConfidenceInterval};
pub use delta::{ratio, smooth_function, DeltaEstimate};
pub use error::CoreError;
pub use estimator::{
    covariance_from_y, estimate_from_sample_moments, exact_variance, unbiased_y_hats,
    EstimateReport, SBox,
};
pub use grouped_accumulator::GroupedMomentAccumulator;
pub use moments::{GroupedMoments, MomentMatrix, Moments};
pub use params::GusParams;
pub use relset::{LineageSchema, RelSet, MAX_RELS};
pub use subsample::LineageBernoulli;

/// Crate-wide result alias.
pub type Result<T, E = CoreError> = std::result::Result<T, E>;
