//! # sa-tpch — deterministic TPC-H-style data generation
//!
//! The evaluation substrate: a seeded generator for the eight TPC-H tables at
//! an arbitrary scale factor, with optional Zipf skew on part popularity.
//! Replaces the official `dbgen` tool for the paper's experiments (see
//! DESIGN.md, "Substitutions"): what matters to the estimator is
//! cardinalities, foreign-key fan-out and the aggregate's moments, all of
//! which are faithfully controlled here.

#![warn(missing_docs)]

pub mod gen;
pub mod zipf;

pub use gen::{
    gen_customer, gen_lineitem, gen_nation, gen_orders, gen_part, gen_partsupp, gen_region,
    gen_supplier, generate, Cardinalities, TpchConfig,
};
pub use zipf::Zipf;
