//! Zipf-distributed index sampling, for skewed workload generation.
//!
//! The paper's estimator quality depends on the data's higher moments (the
//! `y_S` terms), so the evaluation needs both uniform and skewed inputs. A
//! [`Zipf`] sampler over `{0, …, n−1}` with exponent `theta` produces the
//! classic heavy-tailed fan-out (e.g. a few parts appearing in very many
//! lineitems).

use rand::rngs::StdRng;
use rand::RngExt;

/// Zipf distribution over `0..n` with exponent `theta ≥ 0`
/// (`theta = 0` is uniform; larger is more skewed).
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probabilities, length `n`.
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build the sampler. `n` must be positive; `theta` non-negative and
    /// finite.
    pub fn new(n: usize, theta: f64) -> Zipf {
        assert!(n > 0, "Zipf needs a non-empty domain");
        assert!(theta >= 0.0 && theta.is_finite(), "bad exponent {theta}");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(theta);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        // Guard against rounding: the last entry must be exactly 1.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Zipf { cumulative }
    }

    /// Domain size.
    pub fn n(&self) -> usize {
        self.cumulative.len()
    }

    /// Draw one index.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.random();
        // First index whose cumulative probability reaches u.
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn histogram(theta: f64, n: usize, draws: usize) -> Vec<u32> {
        let z = Zipf::new(n, theta);
        let mut rng = StdRng::seed_from_u64(5);
        let mut h = vec![0u32; n];
        for _ in 0..draws {
            h[z.sample(&mut rng)] += 1;
        }
        h
    }

    #[test]
    fn theta_zero_is_uniform() {
        let h = histogram(0.0, 10, 50_000);
        for (i, &c) in h.iter().enumerate() {
            assert!((4_000..6_000).contains(&c), "bucket {i}: {c}");
        }
    }

    #[test]
    fn theta_one_is_skewed_and_ordered() {
        let h = histogram(1.0, 10, 50_000);
        // First bucket should dominate: p₁/p₂ = 2 under theta=1.
        assert!(h[0] > h[1] && h[1] > h[3]);
        let ratio = h[0] as f64 / h[1] as f64;
        assert!((ratio - 2.0).abs() < 0.3, "ratio = {ratio}");
    }

    #[test]
    fn all_draws_in_domain() {
        let z = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
        assert_eq!(z.n(), 3);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_domain_panics() {
        Zipf::new(0, 1.0);
    }
}
