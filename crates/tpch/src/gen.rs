//! The TPC-H-style table generators.
//!
//! Deterministic in `(seed, scale factor)`; value ranges and foreign-key
//! structure follow the TPC-H specification closely enough that the paper's
//! queries (Query 1 of the introduction, the Figure 4 four-relation plan)
//! run unchanged: `lineitem ⋈ orders` on `orderkey`, `orders ⋈ customer` on
//! `custkey`, `lineitem ⋈ part` on `partkey`, prices/discounts/taxes in
//! TPC-H's ranges.
//!
//! This replaces the official `dbgen` tool (see DESIGN.md "Substitutions"):
//! the experiments depend on cardinalities, fan-out and aggregate moments,
//! all of which are controlled here, not on TPC-H's text columns.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use sa_storage::{Catalog, DataType, Field, Schema, Table, TableBuilder, Value};

use crate::zipf::Zipf;

/// Configuration of the generator.
#[derive(Debug, Clone)]
pub struct TpchConfig {
    /// Scale factor: 1.0 ≈ 1.5M orders / 6M lineitems (as TPC-H). Tests use
    /// 0.001–0.01.
    pub scale: f64,
    /// Master RNG seed; every table derives its own stream from it.
    pub seed: u64,
    /// Optional Zipf exponent for `l_partkey` (skewed part popularity);
    /// `None` = uniform.
    pub part_skew: Option<f64>,
    /// Rows per storage block (for `SYSTEM` sampling experiments).
    pub block_rows: usize,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            scale: 0.001,
            seed: 42,
            part_skew: None,
            block_rows: 256,
        }
    }
}

impl TpchConfig {
    /// A config with the given scale factor and defaults elsewhere.
    pub fn scale(scale: f64) -> TpchConfig {
        TpchConfig {
            scale,
            ..TpchConfig::default()
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> TpchConfig {
        self.seed = seed;
        self
    }

    /// Builder-style skew override.
    pub fn with_part_skew(mut self, theta: f64) -> TpchConfig {
        self.part_skew = Some(theta);
        self
    }

    /// Row counts per table at this scale (minimums keep tiny scales usable).
    pub fn cardinalities(&self) -> Cardinalities {
        let s = self.scale.max(1e-6);
        Cardinalities {
            region: 5,
            nation: 25,
            supplier: ((10_000.0 * s) as u64).max(5),
            customer: ((150_000.0 * s) as u64).max(20),
            part: ((200_000.0 * s) as u64).max(20),
            orders: ((1_500_000.0 * s) as u64).max(50),
        }
    }
}

/// Row counts implied by a scale factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cardinalities {
    /// `region` rows (fixed 5).
    pub region: u64,
    /// `nation` rows (fixed 25).
    pub nation: u64,
    /// `supplier` rows.
    pub supplier: u64,
    /// `customer` rows.
    pub customer: u64,
    /// `part` rows.
    pub part: u64,
    /// `orders` rows. Lineitems are 1–7 per order (avg ≈ 4).
    pub orders: u64,
}

const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const BRANDS: [&str; 5] = ["Brand#11", "Brand#22", "Brand#33", "Brand#44", "Brand#55"];
const RETURN_FLAGS: [&str; 3] = ["A", "N", "R"];

fn table_rng(seed: u64, table_ix: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ table_ix.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Generate the full 8-table catalog.
pub fn generate(config: &TpchConfig) -> Catalog {
    let card = config.cardinalities();
    let mut catalog = Catalog::new();
    catalog.register(gen_region(config)).expect("fresh catalog");
    catalog.register(gen_nation(config)).expect("fresh catalog");
    catalog
        .register(gen_supplier(config, &card))
        .expect("fresh catalog");
    catalog
        .register(gen_customer(config, &card))
        .expect("fresh catalog");
    catalog
        .register(gen_part(config, &card))
        .expect("fresh catalog");
    catalog
        .register(gen_partsupp(config, &card))
        .expect("fresh catalog");
    catalog
        .register(gen_orders(config, &card))
        .expect("fresh catalog");
    let orders = catalog.get("orders").expect("just registered");
    catalog
        .register(gen_lineitem(config, &card, &orders))
        .expect("fresh catalog");
    catalog
}

/// `region(r_regionkey, r_name)` — 5 rows.
pub fn gen_region(config: &TpchConfig) -> Table {
    let schema = Schema::new(vec![
        Field::new("r_regionkey", DataType::Int),
        Field::new("r_name", DataType::Str),
    ])
    .expect("static schema");
    let mut b = TableBuilder::new("region", schema).with_block_rows(config.block_rows);
    for (i, name) in REGIONS.iter().enumerate() {
        b.push_row(&[Value::Int(i as i64), Value::str(name)])
            .expect("typed row");
    }
    b.finish().expect("equal columns")
}

/// `nation(n_nationkey, n_name, n_regionkey)` — 25 rows.
pub fn gen_nation(config: &TpchConfig) -> Table {
    let schema = Schema::new(vec![
        Field::new("n_nationkey", DataType::Int),
        Field::new("n_name", DataType::Str),
        Field::new("n_regionkey", DataType::Int),
    ])
    .expect("static schema");
    let mut b = TableBuilder::new("nation", schema).with_block_rows(config.block_rows);
    for i in 0..25i64 {
        b.push_row(&[
            Value::Int(i),
            Value::str(format!("NATION_{i:02}")),
            Value::Int(i % 5),
        ])
        .expect("typed row");
    }
    b.finish().expect("equal columns")
}

/// `supplier(s_suppkey, s_nationkey, s_acctbal)`.
pub fn gen_supplier(config: &TpchConfig, card: &Cardinalities) -> Table {
    let schema = Schema::new(vec![
        Field::new("s_suppkey", DataType::Int),
        Field::new("s_nationkey", DataType::Int),
        Field::new("s_acctbal", DataType::Float),
    ])
    .expect("static schema");
    let mut rng = table_rng(config.seed, 3);
    let mut b = TableBuilder::new("supplier", schema).with_block_rows(config.block_rows);
    b.reserve(card.supplier as usize);
    for i in 0..card.supplier {
        b.push_row(&[
            Value::Int(i as i64 + 1),
            Value::Int(rng.random_range(0..25)),
            Value::Float(round2(rng.random_range(-999.99..9999.99))),
        ])
        .expect("typed row");
    }
    b.finish().expect("equal columns")
}

/// `customer(c_custkey, c_nationkey, c_acctbal, c_mktsegment)`.
pub fn gen_customer(config: &TpchConfig, card: &Cardinalities) -> Table {
    let schema = Schema::new(vec![
        Field::new("c_custkey", DataType::Int),
        Field::new("c_nationkey", DataType::Int),
        Field::new("c_acctbal", DataType::Float),
        Field::new("c_mktsegment", DataType::Str),
    ])
    .expect("static schema");
    let mut rng = table_rng(config.seed, 4);
    let mut b = TableBuilder::new("customer", schema).with_block_rows(config.block_rows);
    b.reserve(card.customer as usize);
    for i in 0..card.customer {
        b.push_row(&[
            Value::Int(i as i64 + 1),
            Value::Int(rng.random_range(0..25)),
            Value::Float(round2(rng.random_range(-999.99..9999.99))),
            Value::str(SEGMENTS[rng.random_range(0..SEGMENTS.len())]),
        ])
        .expect("typed row");
    }
    b.finish().expect("equal columns")
}

/// `part(p_partkey, p_brand, p_retailprice, p_size)`.
pub fn gen_part(config: &TpchConfig, card: &Cardinalities) -> Table {
    let schema = Schema::new(vec![
        Field::new("p_partkey", DataType::Int),
        Field::new("p_brand", DataType::Str),
        Field::new("p_retailprice", DataType::Float),
        Field::new("p_size", DataType::Int),
    ])
    .expect("static schema");
    let mut rng = table_rng(config.seed, 5);
    let mut b = TableBuilder::new("part", schema).with_block_rows(config.block_rows);
    b.reserve(card.part as usize);
    for i in 0..card.part {
        // TPC-H retail price formula (deterministic in the key).
        let key = i + 1;
        let price = 90_000.0 + (key % 200_001) as f64 / 10.0 + 100.0 * (key % 1_000) as f64;
        b.push_row(&[
            Value::Int(key as i64),
            Value::str(BRANDS[rng.random_range(0..BRANDS.len())]),
            Value::Float(round2(price / 100.0)),
            Value::Int(rng.random_range(1..=50)),
        ])
        .expect("typed row");
    }
    b.finish().expect("equal columns")
}

/// `partsupp(ps_partkey, ps_suppkey, ps_availqty, ps_supplycost)` — 4
/// suppliers per part.
pub fn gen_partsupp(config: &TpchConfig, card: &Cardinalities) -> Table {
    let schema = Schema::new(vec![
        Field::new("ps_partkey", DataType::Int),
        Field::new("ps_suppkey", DataType::Int),
        Field::new("ps_availqty", DataType::Int),
        Field::new("ps_supplycost", DataType::Float),
    ])
    .expect("static schema");
    let mut rng = table_rng(config.seed, 6);
    let mut b = TableBuilder::new("partsupp", schema).with_block_rows(config.block_rows);
    b.reserve(card.part as usize * 4);
    for p in 0..card.part {
        for s in 0..4u64 {
            let suppkey = (p + s * (card.supplier / 4).max(1)) % card.supplier + 1;
            b.push_row(&[
                Value::Int(p as i64 + 1),
                Value::Int(suppkey as i64),
                Value::Int(rng.random_range(1..=9999)),
                Value::Float(round2(rng.random_range(1.0..1000.0))),
            ])
            .expect("typed row");
        }
    }
    b.finish().expect("equal columns")
}

/// `orders(o_orderkey, o_custkey, o_orderstatus, o_totalprice,
/// o_orderpriority)`.
pub fn gen_orders(config: &TpchConfig, card: &Cardinalities) -> Table {
    let schema = Schema::new(vec![
        Field::new("o_orderkey", DataType::Int),
        Field::new("o_custkey", DataType::Int),
        Field::new("o_orderstatus", DataType::Str),
        Field::new("o_totalprice", DataType::Float),
        Field::new("o_orderpriority", DataType::Str),
    ])
    .expect("static schema");
    let mut rng = table_rng(config.seed, 7);
    let mut b = TableBuilder::new("orders", schema).with_block_rows(config.block_rows);
    b.reserve(card.orders as usize);
    for i in 0..card.orders {
        let status = match rng.random_range(0..4u8) {
            0 => "F",
            1 => "O",
            _ => "P",
        };
        b.push_row(&[
            Value::Int(i as i64 + 1),
            Value::Int(rng.random_range(0..card.customer) as i64 + 1),
            Value::str(status),
            Value::Float(round2(rng.random_range(850.0..600_000.0))),
            Value::str(PRIORITIES[rng.random_range(0..PRIORITIES.len())]),
        ])
        .expect("typed row");
    }
    b.finish().expect("equal columns")
}

/// `lineitem(l_orderkey, l_linenumber, l_partkey, l_suppkey, l_quantity,
/// l_extendedprice, l_discount, l_tax, l_returnflag)` — 1–7 lines per order.
pub fn gen_lineitem(config: &TpchConfig, card: &Cardinalities, orders: &Table) -> Table {
    let schema = Schema::new(vec![
        Field::new("l_orderkey", DataType::Int),
        Field::new("l_linenumber", DataType::Int),
        Field::new("l_partkey", DataType::Int),
        Field::new("l_suppkey", DataType::Int),
        Field::new("l_quantity", DataType::Float),
        Field::new("l_extendedprice", DataType::Float),
        Field::new("l_discount", DataType::Float),
        Field::new("l_tax", DataType::Float),
        Field::new("l_returnflag", DataType::Str),
    ])
    .expect("static schema");
    let mut rng = table_rng(config.seed, 8);
    let zipf = config
        .part_skew
        .map(|theta| Zipf::new(card.part as usize, theta));
    let mut b = TableBuilder::new("lineitem", schema).with_block_rows(config.block_rows);
    b.reserve(orders.row_count() as usize * 4);
    for o in 0..orders.row_count() {
        let orderkey = o as i64 + 1;
        let lines = rng.random_range(1..=7);
        for line in 1..=lines {
            let partkey = match &zipf {
                Some(z) => z.sample(&mut rng) as i64 + 1,
                None => rng.random_range(0..card.part) as i64 + 1,
            };
            let quantity = rng.random_range(1..=50) as f64;
            let extended = round2(quantity * rng.random_range(900.0..2100.0));
            b.push_row(&[
                Value::Int(orderkey),
                Value::Int(line),
                Value::Int(partkey),
                Value::Int(rng.random_range(0..card.supplier) as i64 + 1),
                Value::Float(quantity),
                Value::Float(extended),
                Value::Float(round2(rng.random_range(0.0..=0.10))),
                Value::Float(round2(rng.random_range(0.0..=0.08))),
                Value::str(RETURN_FLAGS[rng.random_range(0..RETURN_FLAGS.len())]),
            ])
            .expect("typed row");
        }
    }
    b.finish().expect("equal columns")
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Catalog {
        generate(&TpchConfig::scale(0.001))
    }

    #[test]
    fn all_eight_tables_present() {
        let c = tiny();
        for t in [
            "region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem",
        ] {
            assert!(c.contains(t), "missing {t}");
        }
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn cardinalities_scale() {
        let small = TpchConfig::scale(0.001).cardinalities();
        let big = TpchConfig::scale(0.01).cardinalities();
        assert_eq!(small.orders, 1500);
        assert_eq!(big.orders, 15_000);
        assert_eq!(small.region, 5);
        assert_eq!(big.nation, 25);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&TpchConfig::scale(0.001).with_seed(9));
        let b = generate(&TpchConfig::scale(0.001).with_seed(9));
        let ta = a.get("lineitem").unwrap();
        let tb = b.get("lineitem").unwrap();
        assert_eq!(ta.row_count(), tb.row_count());
        for r in [0u64, 17, ta.row_count() - 1] {
            assert_eq!(ta.row(r).unwrap(), tb.row(r).unwrap());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&TpchConfig::scale(0.001).with_seed(1));
        let b = generate(&TpchConfig::scale(0.001).with_seed(2));
        let ra = a.get("orders").unwrap().row(0).unwrap();
        let rb = b.get("orders").unwrap().row(0).unwrap();
        assert_ne!(ra, rb);
    }

    #[test]
    fn lineitem_fk_range_valid() {
        let c = tiny();
        let li = c.get("lineitem").unwrap();
        let orders = c.get("orders").unwrap().row_count() as i64;
        let parts = c.get("part").unwrap().row_count() as i64;
        let ok_col = li.column_by_name("l_orderkey").unwrap();
        let pk_col = li.column_by_name("l_partkey").unwrap();
        for r in 0..li.row_count() as usize {
            let ok = ok_col.value(r).as_i64().unwrap();
            let pk = pk_col.value(r).as_i64().unwrap();
            assert!(ok >= 1 && ok <= orders);
            assert!(pk >= 1 && pk <= parts);
        }
    }

    #[test]
    fn every_order_has_lineitems() {
        let c = tiny();
        let li = c.get("lineitem").unwrap();
        let n_orders = c.get("orders").unwrap().row_count();
        let mut seen = vec![false; n_orders as usize + 1];
        let ok_col = li.column_by_name("l_orderkey").unwrap();
        for r in 0..li.row_count() as usize {
            seen[ok_col.value(r).as_i64().unwrap() as usize] = true;
        }
        assert!(seen[1..].iter().all(|&s| s), "order without lineitems");
        // Average lines per order ≈ 4.
        let avg = li.row_count() as f64 / n_orders as f64;
        assert!((3.0..5.0).contains(&avg), "avg lines {avg}");
    }

    #[test]
    fn discount_and_tax_ranges() {
        let c = tiny();
        let li = c.get("lineitem").unwrap();
        let d = li.column_by_name("l_discount").unwrap();
        let t = li.column_by_name("l_tax").unwrap();
        for r in 0..li.row_count() as usize {
            let dv = d.f64_at(r).unwrap();
            let tv = t.f64_at(r).unwrap();
            assert!((0.0..=0.10).contains(&dv));
            assert!((0.0..=0.08).contains(&tv));
        }
    }

    #[test]
    fn skewed_partkeys_are_skewed() {
        let cfg = TpchConfig::scale(0.002).with_part_skew(1.2);
        let c = generate(&cfg);
        let li = c.get("lineitem").unwrap();
        let parts = c.get("part").unwrap().row_count() as usize;
        let mut counts = vec![0u32; parts + 1];
        let pk = li.column_by_name("l_partkey").unwrap();
        for r in 0..li.row_count() as usize {
            counts[pk.value(r).as_i64().unwrap() as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let mean = li.row_count() as f64 / parts as f64;
        assert!(max > 8.0 * mean, "max {max} vs mean {mean}: not skewed");
    }

    #[test]
    fn customer_segments_valid() {
        let c = tiny();
        let cust = c.get("customer").unwrap();
        let seg = cust.column_by_name("c_mktsegment").unwrap();
        for r in 0..cust.row_count() as usize {
            let v = seg.value(r);
            let s = v.as_str().unwrap();
            assert!(SEGMENTS.contains(&s));
        }
    }

    #[test]
    fn partsupp_is_four_per_part() {
        let c = tiny();
        assert_eq!(
            c.get("partsupp").unwrap().row_count(),
            c.get("part").unwrap().row_count() * 4
        );
    }
}
