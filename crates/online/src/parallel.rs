//! The shard-parallel worker pool behind `parallelism > 1`.
//!
//! The paper's estimator makes parallel online aggregation almost free:
//! second-moment state composes exactly under
//! [`sa_core::MomentAccumulator::merge`] (the same rank-two delta algebra
//! the per-row path uses), so N workers can consume disjoint slices of the
//! sampled plan and the coordinator can read the *global* estimate at any
//! time by absorbing the workers' queued deltas — never touching a row
//! twice.
//!
//! Topology: [`sa_exec::open_stream_partitioned`] hands each worker thread
//! its own [`ChunkStream`] over a disjoint, deterministic slice. Workers
//! loop pull-chunk → accumulate it into a fresh local **delta** (all
//! per-row work happens outside any lock) → queue the delta on the shard
//! slot (an O(1) push under a mutex only the coordinator ever contends
//! on) → ping the coordinator. The coordinator wakes on pings (batching
//! whatever is already pending), takes each shard's queued deltas, absorbs
//! them into one persistent global accumulator — because merge composes
//! exactly,
//! `global ⊕ δ₁ ⊕ δ₂ ⊕ …` equals a single accumulator fed every row, so
//! per-tick cost is proportional to the *new* rows, never the total — sums
//! per-shard scan progress (slices report slice-relative `(consumed,
//! available)`, so the sums are true per-relation coverage and the Prop-8
//! prefix scaling is unchanged), and judges the stopping rule exactly as
//! the sequential loop does. On stop it raises a cancellation flag;
//! workers observe it at their next chunk boundary.
//!
//! Mid-run snapshot *timing* depends on thread scheduling (which worker
//! pings first), and so does the merge interleaving — estimates are exact
//! up to floating-point associativity of the merge order (the exhaustion
//! readout equals the batch estimator on the realized union sample to
//! 1e-9, pinned by `tests/parallel_online.rs`).
//!
//! ## Panic containment
//!
//! A worker that panics (a bug in an expression kernel, or an injected
//! `worker.chunk.panic` fault) must not take the query down: the pull +
//! accumulate step runs under [`std::panic::catch_unwind`], and on a panic
//! the shard **discards its pending (never-absorbed) deltas and rolls its
//! published scan progress back to the last coordinator drain** before
//! marking itself done. Discarding the deltas without the progress
//! rollback would desynchronize the sample from its claimed Prop-8
//! coverage and bias the readout; with it, the surviving global state
//! covers exactly the absorbed prefix — a valid, merely smaller, sample.
//! The coordinator observes the `panicked` flag and judges one final tick
//! with `degraded = true`, which the drivers report as
//! [`sa_plan::StopReason::Degraded`]. Shard locks are acquired with
//! explicit poison recovery everywhere, so even a panic at an unexpected
//! point cannot wedge the pool.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

use sa_exec::{ChunkStream, ColumnarChunk};
use sa_obs::{Counter, Histogram};
use sa_storage::Value;

use crate::error::Error;
use crate::Result;

/// The worker pool's observability handles, threaded in through
/// [`crate::driver::RunCtx`]. The default (disabled) handles make every
/// update a single untaken branch, so the deprecated free functions and
/// uninstrumented engines pay nothing.
#[derive(Clone, Default)]
pub(crate) struct PoolObs {
    /// Chunks accumulated by workers (`sa_worker_chunks_total`).
    pub(crate) chunks: Counter,
    /// Rows accumulated by workers (`sa_worker_rows_total`); together with
    /// wall time this gives rows/s per worker.
    pub(crate) rows: Counter,
    /// Backpressure episodes: a worker parked because its un-drained
    /// deltas hit the bound (`sa_worker_backpressure_stalls_total`).
    pub(crate) stalls: Counter,
    /// Wall time of one coordinator drain-and-merge tick
    /// (`sa_coordinator_merge_us`).
    pub(crate) merge_us: Histogram,
    /// Worker panics contained by the pool — the query degraded instead of
    /// dying (`sa_worker_panics_contained_total`).
    pub(crate) panics: Counter,
}

/// An accumulator that can absorb a shard built over the same lineage
/// schema — the merge the coordinator folds worker state with. Deltas are
/// *moved* from worker queues to the coordinator (no cloning), so `Send`
/// is the only marker required.
pub(crate) trait ShardAccumulator: Send {
    /// Merge `other` into `self` (exact, order-insensitive up to float
    /// associativity).
    fn absorb(&mut self, other: &Self) -> Result<()>;
    /// Rows consumed so far (used to skip no-change snapshot ticks).
    fn rows(&self) -> u64;
}

impl ShardAccumulator for sa_core::MomentAccumulator {
    fn absorb(&mut self, other: &Self) -> Result<()> {
        self.merge(other).map_err(Error::Core)
    }
    fn rows(&self) -> u64 {
        self.count()
    }
}

impl ShardAccumulator for sa_core::GroupedMomentAccumulator<Vec<Value>> {
    fn absorb(&mut self, other: &Self) -> Result<()> {
        self.merge(other).map_err(Error::Core)
    }
    fn rows(&self) -> u64 {
        self.count()
    }
}

/// One worker's published state: per-chunk delta accumulators queued since
/// the coordinator last drained (each built *outside* the lock — publishing
/// is an O(1) `Vec::push`, so the coordinator never waits on a chunk's
/// accumulation), the latest slice-relative scan progress, and whether the
/// stream has drained.
struct ShardState<A> {
    deltas: Vec<A>,
    /// Rows across `deltas` not yet drained by the coordinator — the
    /// backpressure quantity.
    pending_rows: u64,
    progress: Vec<(u64, u64)>,
    /// `progress` as of the coordinator's last drain — everything queued at
    /// that instant was taken, so this is exactly the coverage of the
    /// *absorbed* chunks. A contained panic rolls `progress` back to it,
    /// keeping the discarded pending deltas out of the claimed coverage.
    progress_at_drain: Vec<(u64, u64)>,
    exhausted: bool,
    /// The worker panicked and was contained; the shard's published state
    /// covers only its absorbed prefix. The coordinator turns this into a
    /// `degraded` final tick.
    panicked: bool,
    error: Option<Error>,
}

/// One worker's slot: its state plus the condvar the coordinator signals
/// after draining the delta (backpressure release).
struct Shard<A> {
    state: Mutex<ShardState<A>>,
    drained: Condvar,
}

/// Lock a shard with explicit poison recovery: a panic elsewhere (always
/// contained by the pool) must never cascade into a poisoned-lock panic on
/// a healthy thread. `ShardState` is plain data — every mutation below is
/// a complete, consistent update, so the recovered view is always usable.
fn lock_shard<A>(m: &Mutex<ShardState<A>>) -> MutexGuard<'_, ShardState<A>> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Drive `streams.len()` worker threads over their disjoint slices and
/// judge the stopping rule on the merged state after every tick.
///
/// `push_chunk` accumulates one whole columnar chunk into a shard-local
/// delta (the per-chunk batch path — workers never touch rows one at a
/// time). `judge` is called on the coordinator thread with the merged
/// accumulator, the summed per-relation progress, whether *every* shard
/// has drained, and whether any shard's worker panicked and was contained;
/// it emits the snapshot and returns `Some(reason)` to stop (it must
/// return `Some` when `exhausted` or `degraded` is true — there will be no
/// further tick). The final merged accumulator and the stop reason are
/// returned; workers are joined before this function returns.
pub(crate) fn run_worker_pool<A, P, J>(
    streams: Vec<ChunkStream>,
    chunk_rows: usize,
    obs: &PoolObs,
    new_acc: impl Fn() -> A + Sync,
    push_chunk: P,
    mut judge: J,
) -> Result<(A, sa_plan::StopReason)>
where
    A: ShardAccumulator,
    P: Fn(&mut A, &ColumnarChunk) -> Result<()> + Sync,
    J: FnMut(&A, &[(u64, u64)], bool, bool) -> Result<Option<sa_plan::StopReason>>,
{
    let nrels = streams.first().map(|s| s.relations().len()).unwrap_or(0);
    // Backpressure: a worker pauses once its un-drained deltas hold two
    // chunks' worth of rows, until the coordinator drains them. This bounds
    // the overshoot past a stopping rule (and the delta memory) to
    // O(workers × chunk_rows) without throttling steady-state throughput —
    // the coordinator drains every tick.
    let backpressure = 2 * chunk_rows.max(1) as u64;
    let shards: Vec<Shard<A>> = streams
        .iter()
        .map(|s| Shard {
            state: Mutex::new(ShardState {
                deltas: Vec::new(),
                pending_rows: 0,
                progress: s.progress(),
                progress_at_drain: s.progress(),
                exhausted: false,
                panicked: false,
                error: None,
            }),
            drained: Condvar::new(),
        })
        .collect();
    let cancel = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<()>();
    std::thread::scope(|scope| {
        for (stream, shard) in streams.into_iter().zip(&shards) {
            let tx = tx.clone();
            let cancel = &cancel;
            let push_chunk = &push_chunk;
            let new_acc = &new_acc;
            scope.spawn(move || {
                worker_loop(
                    stream,
                    chunk_rows,
                    backpressure,
                    shard,
                    obs,
                    new_acc,
                    push_chunk,
                    cancel,
                    tx,
                )
            });
        }
        drop(tx); // the coordinator's recv() errors once every worker exits
        let mut global = new_acc();
        let out = (|| {
            let mut last_judged: Option<u64> = None;
            loop {
                // Wait for at least one completed chunk, then fold in
                // everything already pending — a fast worker must not build
                // a snapshot backlog the coordinator can never drain.
                if rx.recv().is_ok() {
                    while rx.try_recv().is_ok() {}
                }
                // Instant::now only when a histogram is listening — the
                // uninstrumented pool's tick stays syscall-free here.
                let merge_start = obs.merge_us.enabled().then(Instant::now);
                let mut progress = vec![(0u64, 0u64); nrels];
                let mut exhausted = true;
                let mut degraded = false;
                for shard in &shards {
                    // Take the queued deltas under the lock (an O(1) swap),
                    // merge outside it — the worker accumulates its next
                    // chunk meanwhile.
                    let deltas = {
                        let mut s = lock_shard(&shard.state);
                        if let Some(e) = &s.error {
                            return Err(e.clone());
                        }
                        for (t, &(c, n)) in progress.iter_mut().zip(&s.progress) {
                            t.0 += c;
                            t.1 += n;
                        }
                        exhausted &= s.exhausted;
                        degraded |= s.panicked;
                        s.pending_rows = 0;
                        s.progress_at_drain = s.progress.clone();
                        std::mem::take(&mut s.deltas)
                    };
                    shard.drained.notify_all();
                    for delta in &deltas {
                        global.absorb(delta)?;
                    }
                }
                if let Some(t) = merge_start {
                    obs.merge_us.record(t.elapsed().as_micros() as u64);
                }
                // A ping with no new rows (a worker's final empty pull, a
                // backpressure re-ping) would replay the previous snapshot
                // verbatim; skip it unless it is the first tick or carries
                // the exhaustion or degradation verdict. Quiet gaps are
                // bounded by one chunk, so a time budget still fires
                // promptly.
                if last_judged == Some(global.rows()) && !exhausted && !degraded {
                    continue;
                }
                last_judged = Some(global.rows());
                if let Some(reason) = judge(&global, &progress, exhausted, degraded)? {
                    return Ok(reason);
                }
            }
        })();
        // Stop, error or panic: workers observe the flag at their next
        // chunk boundary (waking any that were blocked on backpressure);
        // the scope joins them before returning.
        cancel.store(true, Ordering::Relaxed);
        for shard in &shards {
            let _guard = lock_shard(&shard.state);
            shard.drained.notify_all();
        }
        out.map(|reason| (global, reason))
    })
}

/// One worker: pull a columnar chunk, accumulate it into a fresh local
/// delta **outside the lock** (the expensive per-chunk work — compiled
/// expression eval, batch moment pushes, fingerprinting — never blocks the
/// coordinator), publish the delta with an O(1) queue push, ping the
/// coordinator — pausing under backpressure — until drained, cancelled or
/// failed.
#[allow(clippy::too_many_arguments)]
fn worker_loop<A, P>(
    mut stream: ChunkStream,
    chunk_rows: usize,
    backpressure: u64,
    shard: &Shard<A>,
    obs: &PoolObs,
    new_acc: &(impl Fn() -> A + Sync),
    push_chunk: &P,
    cancel: &AtomicBool,
    tx: mpsc::Sender<()>,
) where
    A: ShardAccumulator,
    P: Fn(&mut A, &ColumnarChunk) -> Result<()> + Sync,
{
    let fail = |e: Error| {
        let mut s = lock_shard(&shard.state);
        s.error = Some(e);
        drop(s);
        let _ = tx.send(());
    };
    loop {
        if cancel.load(Ordering::Relaxed) {
            return;
        }
        // The pull + accumulate step is the only per-row code on this
        // thread; contain any panic in it (a kernel bug, or an injected
        // `worker.chunk.panic` fault) so the query degrades instead of
        // dying. AssertUnwindSafe is sound because a panicking iteration
        // abandons the shard: `stream` and the local delta are never
        // observed again.
        let step = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
            || -> Result<(Option<A>, usize, bool)> {
                if sa_fault::hit(sa_fault::sites::WORKER_STALL) {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                if sa_fault::hit(sa_fault::sites::WORKER_PANIC) {
                    panic!("injected fault: worker panic at a chunk boundary");
                }
                let chunk = stream.next_batch(chunk_rows)?;
                let exhausted = chunk.is_empty();
                let mut delta = None;
                if !exhausted {
                    let mut local = new_acc();
                    push_chunk(&mut local, &chunk)?;
                    delta = Some(local);
                }
                Ok((delta, chunk.rows(), exhausted))
            },
        ));
        let (delta, chunk_len, exhausted) = match step {
            Ok(Ok(v)) => v,
            Ok(Err(e)) => return fail(e),
            Err(_panic) => {
                // Contained: discard the pending (never-absorbed) deltas
                // AND roll the published coverage back to the last drain —
                // the surviving global state then covers exactly the
                // absorbed prefix, so the degraded readout stays an
                // unbiased (smaller) sample estimate.
                let mut s = lock_shard(&shard.state);
                s.deltas.clear();
                s.pending_rows = 0;
                s.progress = s.progress_at_drain.clone();
                s.exhausted = true;
                s.panicked = true;
                drop(s);
                obs.panics.inc();
                let _ = tx.send(());
                return;
            }
        };
        let mut s = lock_shard(&shard.state);
        if let Some(local) = delta {
            s.deltas.push(local);
            s.pending_rows += chunk_len as u64;
            obs.chunks.inc();
            obs.rows.add(chunk_len as u64);
        }
        s.progress = stream.progress();
        s.exhausted = exhausted;
        // Backpressure: once the un-drained deltas hold two chunks' worth
        // of rows, wait for the coordinator to drain them — running further
        // ahead only grows the overshoot past a stopping rule the
        // coordinator has not judged yet.
        let mut stall_counted = false;
        while s.pending_rows >= backpressure && !cancel.load(Ordering::Relaxed) {
            if !stall_counted {
                // One stall per episode, not per spurious wake.
                obs.stalls.inc();
                stall_counted = true;
            }
            // The ping must be in flight before parking, or the coordinator
            // may never wake to drain us.
            let _ = tx.send(());
            s = shard.drained.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        drop(s);
        // The coordinator may already have stopped and dropped the
        // receiver; that just means nobody needs the ping.
        let _ = tx.send(());
        if exhausted {
            return;
        }
    }
}
