//! The progressive query loop: stream chunks, update moments, snapshot,
//! stop when the rule fires.
//!
//! [`run_online`] is the online counterpart of `sa_exec::approx_query`. It
//! rewrites the plan once (the SOA analysis — and hence the top GUS — does
//! not depend on how much of the sample has been consumed), opens a chunked
//! [`sa_exec::open_stream`] over the aggregate's input, and then loops:
//!
//! 1. pull the next chunk of sampled result tuples,
//! 2. push each tuple's `(lineage, f)` into the incremental
//!    [`MomentAccumulator`] (so estimate/variance are O(1) to read out —
//!    nothing is ever recomputed from scratch),
//! 3. emit a [`ProgressSnapshot`] (estimates, CI half-widths, rows, wall
//!    time) to the caller's callback,
//! 4. stop when the [`StoppingRule`] fires or the stream drains.
//!
//! ## Scan-progress scaling
//!
//! A prefix of the sampled stream only gives the *scanned part* of each base
//! relation a chance to appear, so the raw prefix estimate covers the
//! scanned prefix, not the full population. The classical online-aggregation
//! fix (Hellerstein et al.) assumes tuples are scanned in random order, so
//! the scanned prefix of `k` of `N` sampling units is itself a uniform
//! WOR(`k`, `N`) sample — which is a GUS, and **compacts onto the plan's top
//! GUS by Proposition 8**. The driver therefore reads each snapshot under
//! `gus_plan ⊙ Π_r WOR(k_r, N_r)` using [`ChunkStream::progress`]'s
//! per-relation coverage: mid-stream estimates target the full answer, their
//! intervals account for both the not-yet-scanned data *and* the plan's own
//! sampling, and at exhaustion every factor degenerates to the identity, so
//! the final readout **equals the batch estimator's output** on the consumed
//! sample (up to float associativity — the moments are accumulated
//! incrementally). Set [`OnlineOptions::scale_to_population`]` = false` to
//! read raw prefix estimates under the plan GUS instead.
//!
//! `UnionSamples` plans need more care than one plan-wide compaction:
//! compaction does not distribute over Proposition 7 unions, and the
//! streamed union drains branch 1 completely before branch 2 starts, so a
//! *flat* per-relation coverage would misstate which branch's sample is
//! partial. The scaling walk (`scale_gus_tree`) therefore walks the plan's
//! [`sa_plan::GusTree`] against the stream's [`ProgressTree`]: each
//! union-free region gets its own WOR prefix factors, and the scaled branch
//! designs are re-unioned — `union(G₁ ⊙ WOR(k₁, N), G₂ ⊙ WOR(k₂, N))`,
//! with the second branch excluded entirely until its first tuple can
//! arrive.
//!
//! Online mode is meaningful when the plan actually samples: the interval
//! then tightens as the sample streams in. An unsampled plan still gets the
//! scan-progress factor (estimating the full scan from the prefix), but no
//! sampling variance of its own.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sa_core::{GusParams, MomentAccumulator};
use sa_exec::ProgressTree;
use sa_exec::{agg_results_from_report, layout_dims, open_stream_partitioned, AggResult};
use sa_exec::{open_shared_stream, SharedTableScan};
use sa_exec::{BatchDimEval, ChunkStream, ColumnarChunk, DimLayout, ExecError, ExecOptions};
use sa_plan::{rewrite, AggSpec, GusTree, LogicalPlan, SoaAnalysis, StopReason, StoppingRule};
use sa_sql::plan_online_sql;
use sa_storage::Catalog;

use crate::api::QueryOptions;
use crate::error::Error;
use crate::parallel::{run_worker_pool, PoolObs};
use crate::Result;

/// Options for the deprecated [`run_online`] free function.
#[deprecated(
    since = "0.1.0",
    note = "use `sa_online::QueryOptions` with the `Engine`/`Session` builder API"
)]
#[derive(Debug, Clone)]
pub struct OnlineOptions {
    /// Seed for the plan's sampling operators (the streamed sample
    /// realization is fully determined by `(plan, seed)`).
    pub seed: u64,
    /// Target rows per pulled chunk (operators may over/under-fill).
    pub chunk_rows: usize,
    /// Confidence level for reported intervals when the stopping rule has
    /// no CI target of its own.
    pub confidence: f64,
    /// When to stop early. [`StoppingRule::exhaustive`] runs the whole
    /// sample.
    pub rule: StoppingRule,
    /// Scale mid-stream estimates to the full population by compacting a
    /// per-relation WOR(scanned, total) factor onto the plan GUS (the
    /// random-scan-order assumption of online aggregation). Default `true`;
    /// with `false`, snapshots read the raw prefix estimate under the plan
    /// GUS.
    pub scale_to_population: bool,
    /// Number of worker threads driving the sampled plan (`--jobs N` in the
    /// CLI). `1` (the default) runs the classic single-threaded loop —
    /// byte-identical snapshots for a fixed seed. `N > 1` opens
    /// [`sa_exec::open_stream_partitioned`] slices and merges shard-local
    /// accumulators per snapshot tick; the exhaustion readout still equals
    /// the batch estimator on the realized union sample, while mid-run
    /// snapshot *timing* becomes scheduling-dependent. `0` is rejected.
    pub parallelism: usize,
    /// Grow the pull hint as the estimate stabilizes: once the relative CI
    /// half-width improves by less than 10% between consecutive snapshots,
    /// the chunk size doubles (up to 64× [`OnlineOptions::chunk_rows`]),
    /// cutting snapshot/readout overhead on long runs. The *realized
    /// sample* is chunk-size independent, so estimates are unchanged —
    /// only snapshot cadence coarsens. Default `false`. Applies to the
    /// sequential loops; parallel workers keep their fixed chunk size (the
    /// coordinator already batches their deltas per tick).
    pub adaptive_chunks: bool,
}

/// Hard cap multiplier for [`OnlineOptions::adaptive_chunks`]: the pull
/// hint never exceeds `chunk_rows × 64`.
pub(crate) const ADAPTIVE_CHUNK_CAP_FACTOR: usize = 64;

/// One step of the adaptive chunk policy: double `cur` (up to `cap`) when
/// the relative CI half-width `rel` improved by less than 10% over `prev`.
pub(crate) fn adapt_chunk_hint(
    cur: usize,
    cap: usize,
    prev: &mut Option<f64>,
    rel: Option<f64>,
) -> usize {
    let mut next = cur;
    if let (Some(p), Some(r)) = (*prev, rel) {
        if p.is_finite() && r.is_finite() && r > 0.9 * p {
            next = cur.saturating_mul(2).min(cap);
        }
    }
    *prev = rel;
    next
}

#[allow(deprecated)]
impl Default for OnlineOptions {
    fn default() -> Self {
        OnlineOptions {
            seed: 0,
            chunk_rows: 1024,
            confidence: 0.95,
            rule: StoppingRule::exhaustive(),
            scale_to_population: true,
            parallelism: 1,
            adaptive_chunks: false,
        }
    }
}

/// How a progressive run is wired into its surroundings: an optional
/// cancellation flag (set by [`crate::QueryHandle::cancel`]) and an
/// optional shared scan hub the stream should attach to instead of opening
/// a private scan. The deprecated free functions run with the default
/// (no cancellation, private scans); the [`crate::Engine`] fills both in.
#[derive(Default, Clone)]
pub(crate) struct RunCtx {
    /// Checked once per snapshot tick; when set, the loop stops with
    /// [`StopReason::Cancelled`] after emitting the tick's snapshot.
    pub(crate) cancel: Option<Arc<AtomicBool>>,
    /// Attach the (sequential) stream to this shared circular scan; the
    /// attach origin becomes a scan-prefix origin shift in the Prop-8
    /// scaling. Ignored for `parallelism > 1`.
    pub(crate) shared: Option<Arc<SharedTableScan>>,
    /// Worker-pool observability handles (disabled by default — the
    /// deprecated free functions and uninstrumented engines record
    /// nothing).
    pub(crate) pool: PoolObs,
    /// Streaming-scan observability handles threaded into
    /// [`sa_exec::ExecOptions`] (disabled by default).
    pub(crate) scan_obs: sa_exec::ScanObs,
}

impl RunCtx {
    pub(crate) fn cancelled(&self) -> bool {
        self.cancel
            .as_deref()
            .is_some_and(|c| c.load(Ordering::Relaxed))
    }
}

/// The state of the estimate after one chunk of the progressive loop.
#[derive(Debug, Clone)]
pub struct ProgressSnapshot {
    /// 1-based snapshot index. In the sequential loop (`parallelism = 1`)
    /// this equals the number of pulled chunks; with workers it counts
    /// coordinator ticks, each of which may absorb several worker chunks.
    pub chunk: u64,
    /// Cumulative sampled result tuples consumed.
    pub rows: u64,
    /// Per-aggregate estimates with intervals, in `SELECT`-list order,
    /// judged at the stopping rule's confidence level.
    pub aggs: Vec<AggResult>,
    /// Worst (largest) relative CI half-width across the aggregates at the
    /// rule's confidence, `None` while some variance is not yet estimable.
    pub rel_half_width: Option<f64>,
    /// Confidence level the snapshot's intervals were computed at.
    pub confidence: f64,
    /// Per-relation `(consumed, available)` scan coverage, aligned with the
    /// plan's lineage schema (see [`ChunkStream::progress`]).
    pub progress: Vec<(u64, u64)>,
    /// The GUS the snapshot was read under: the plan GUS compacted with the
    /// scan-progress factors (or the plan GUS itself when scaling is off /
    /// the stream is exhausted).
    pub gus: GusParams,
    /// Wall time since the loop started.
    pub elapsed: Duration,
}

/// The outcome of a progressive run.
#[derive(Debug, Clone)]
pub struct OnlineResult {
    /// Why the loop stopped.
    pub reason: StopReason,
    /// The last emitted snapshot (the final estimates).
    pub snapshot: ProgressSnapshot,
    /// Number of snapshots emitted. Equals the chunks consumed only in the
    /// sequential loop (`parallelism = 1`); a parallel coordinator tick may
    /// absorb several worker chunks.
    pub chunks: u64,
    /// The SOA analysis (top GUS, lineage schema, rewrite trace).
    pub analysis: SoaAnalysis,
}

/// Run an aggregate plan progressively. The plan root must be an
/// [`LogicalPlan::Aggregate`]; `on_snapshot` is called after every chunk
/// (including the final one).
#[deprecated(
    since = "0.1.0",
    note = "use `Engine::new(catalog).session().query_plan(&plan).run_with(...)`"
)]
#[allow(deprecated)]
pub fn run_online(
    plan: &LogicalPlan,
    catalog: &Catalog,
    opts: &OnlineOptions,
    on_snapshot: impl FnMut(&ProgressSnapshot),
) -> Result<OnlineResult> {
    drive_scalar(
        plan,
        catalog,
        &QueryOptions::from(opts),
        &RunCtx::default(),
        on_snapshot,
    )
}

/// The canonical scalar progressive loop; everything public (the builder
/// API and the deprecated free functions) funnels into this.
pub(crate) fn drive_scalar(
    plan: &LogicalPlan,
    catalog: &Catalog,
    opts: &QueryOptions,
    ctx: &RunCtx,
    mut on_snapshot: impl FnMut(&ProgressSnapshot),
) -> Result<OnlineResult> {
    let OpenedAggregate {
        analysis,
        aggs,
        mut streams,
        layout,
    } = open_aggregate(plan, catalog, opts, ctx, &[], "run_online")?;
    if streams.len() > 1 {
        return drive_scalar_parallel(analysis, aggs, streams, layout, opts, ctx, on_snapshot);
    }
    let mut stream = streams.pop().expect("open_aggregate yields >= 1 stream");
    let dim_eval = layout.compile_batch(stream.schema())?;
    let mut acc = MomentAccumulator::new(analysis.schema.n(), layout.dims());
    let confidence = opts.rule.confidence_or(opts.confidence);
    let start = Instant::now();
    let mut chunks = 0u64;
    let mut hint = opts.chunk_rows;
    let cap = opts.chunk_rows.saturating_mul(ADAPTIVE_CHUNK_CAP_FACTOR);
    let mut prev_rel: Option<f64> = None;
    loop {
        let chunk = stream.next_batch(hint)?;
        let exhausted = chunk.is_empty();
        push_scalar_chunk(&mut acc, &dim_eval, &chunk)?;
        chunks += 1;
        let (snapshot, reason) = scalar_tick(
            &acc,
            aggs,
            &layout,
            &analysis.gus,
            &analysis.gus_tree,
            stream.progress(),
            &stream.progress_tree(),
            opts,
            confidence,
            chunks,
            exhausted,
            ctx.cancelled(),
            false,
            &start,
        )?;
        on_snapshot(&snapshot);
        if let Some(reason) = reason {
            return Ok(OnlineResult {
                reason,
                snapshot,
                chunks,
                analysis,
            });
        }
        if opts.adaptive_chunks {
            hint = adapt_chunk_hint(hint, cap, &mut prev_rel, snapshot.rel_half_width);
        }
    }
}

/// Accumulate one columnar chunk into a scalar accumulator: evaluate every
/// SBox dimension's `f` column at once and land in the amortized
/// [`MomentAccumulator::push_batch`] path.
pub(crate) fn push_scalar_chunk(
    acc: &mut MomentAccumulator,
    dim_eval: &BatchDimEval,
    chunk: &ColumnarChunk,
) -> Result<()> {
    if chunk.is_empty() {
        return Ok(());
    }
    let f_cols = dim_eval.eval(&chunk.batch)?;
    let lineage: Vec<&[u64]> = chunk.lineage.iter().map(|l| l.as_slice()).collect();
    let f: Vec<&[f64]> = f_cols.iter().map(|c| c.as_slice()).collect();
    acc.push_batch(&lineage, &f).map_err(Error::Core)
}

/// Build the snapshot for one tick of the scalar loop and judge the
/// stopping rule (degradation wins, then exhaustion, then cancellation,
/// then the hard deadline, then the rule) — the per-tick readout shared
/// verbatim by the sequential loop and the parallel coordinator, so the
/// two paths cannot diverge in snapshot semantics or stop precedence.
#[allow(clippy::too_many_arguments)]
fn scalar_tick(
    acc: &MomentAccumulator,
    aggs: &[AggSpec],
    layout: &DimLayout,
    plan_gus: &GusParams,
    gus_tree: &GusTree,
    progress: Vec<(u64, u64)>,
    prog_tree: &ProgressTree,
    opts: &QueryOptions,
    confidence: f64,
    chunk: u64,
    exhausted: bool,
    cancelled: bool,
    degraded: bool,
    start: &Instant,
) -> Result<(ProgressSnapshot, Option<StopReason>)> {
    let gus = if opts.scale_to_population {
        scale_gus_tree(gus_tree, prog_tree)?
    } else {
        plan_gus.clone()
    };
    let report = acc.report(&gus)?;
    let agg_results = agg_results_from_report(aggs, layout, &report, confidence);
    let rel_half_width = worst_rel_half_width(&agg_results);
    let snapshot = ProgressSnapshot {
        chunk,
        rows: acc.count(),
        aggs: agg_results,
        rel_half_width,
        confidence,
        progress,
        gus,
        elapsed: start.elapsed(),
    };
    let reason = if degraded {
        // A fault was contained mid-run (a panicked worker shard): the
        // absorbed prefix is still a valid — merely smaller — sample, and
        // this snapshot reads exactly it. Degradation outranks even
        // exhaustion: the realized sample is not the full one.
        Some(StopReason::Degraded)
    } else if exhausted {
        Some(StopReason::Exhausted)
    } else if cancelled {
        // A cancelled loop still emits this snapshot: the accumulated
        // prefix is a valid mid-stream estimate.
        Some(StopReason::Cancelled)
    } else if opts.deadline.is_some_and(|d| snapshot.elapsed >= d) {
        // The hard deadline cancels the run even when the caller's soft
        // rule never fires — checked before the rule so a simultaneous
        // soft time-budget stop reports the imposed bound.
        Some(StopReason::Deadline)
    } else {
        opts.rule
            .should_stop(rel_half_width, snapshot.rows, snapshot.elapsed)
    };
    Ok((snapshot, reason))
}

/// The shard-parallel progressive loop: one worker thread per partitioned
/// stream, thread-local accumulators, a coordinator that absorbs the
/// queued per-chunk deltas per snapshot tick and judges the stopping rule
/// exactly as the sequential loop does (see [`crate::parallel`]).
fn drive_scalar_parallel(
    analysis: SoaAnalysis,
    aggs: &[AggSpec],
    streams: Vec<ChunkStream>,
    layout: DimLayout,
    opts: &QueryOptions,
    ctx: &RunCtx,
    mut on_snapshot: impl FnMut(&ProgressSnapshot),
) -> Result<OnlineResult> {
    let n = analysis.schema.n();
    let dims = layout.dims();
    let dim_eval = layout.compile_batch(streams[0].schema())?;
    let confidence = opts.rule.confidence_or(opts.confidence);
    let start = Instant::now();
    let mut chunks = 0u64;
    let mut last: Option<ProgressSnapshot> = None;
    let layout = &layout;
    let dim_eval = &dim_eval;
    let (_, reason) = run_worker_pool(
        streams,
        opts.chunk_rows,
        &ctx.pool,
        || MomentAccumulator::new(n, dims),
        |acc: &mut MomentAccumulator, chunk: &ColumnarChunk| {
            push_scalar_chunk(acc, dim_eval, chunk)
        },
        |merged, progress, exhausted, degraded| {
            chunks += 1;
            // Workers see disjoint slices of one scan, so the element-wise
            // summed coverage is a flat per-relation prefix; union plans
            // never reach this loop (partitioned opens refuse them).
            let prog_tree = ProgressTree::Leaf(progress.to_vec());
            let (snapshot, reason) = scalar_tick(
                merged,
                aggs,
                layout,
                &analysis.gus,
                &analysis.gus_tree,
                progress.to_vec(),
                &prog_tree,
                opts,
                confidence,
                chunks,
                exhausted,
                ctx.cancelled(),
                degraded,
                &start,
            )?;
            on_snapshot(&snapshot);
            last = Some(snapshot);
            Ok(reason)
        },
    )?;
    Ok(OnlineResult {
        reason,
        snapshot: last.expect("the pool judges at least one tick"),
        chunks,
        analysis,
    })
}

/// Parse, bind and progressively run a scalar aggregate SQL query. A
/// `WITHIN ε PERCENT CONFIDENCE γ` clause in the query overrides the CI
/// target of `opts.rule` (row/time budgets are kept — they compose).
#[deprecated(
    since = "0.1.0",
    note = "use `Engine::new(catalog).session().query(sql).run_with(...)`"
)]
#[allow(deprecated)]
pub fn run_online_sql(
    sql: &str,
    catalog: &Catalog,
    opts: &OnlineOptions,
    on_snapshot: impl FnMut(&ProgressSnapshot),
) -> Result<OnlineResult> {
    let (plan, rule) = plan_online_sql(sql, catalog)?;
    let mut opts = QueryOptions::from(opts);
    if let Some(rule) = rule {
        opts.rule.ci_target = rule.ci_target;
    }
    drive_scalar(&plan, catalog, &opts, &RunCtx::default(), on_snapshot)
}

/// The validated, opened state every progressive loop starts from. For
/// `parallelism = 1` there is exactly one stream (the classic sequential
/// loop); for `N > 1`, `streams` holds one disjoint slice per worker.
pub(crate) struct OpenedAggregate<'p> {
    pub(crate) analysis: SoaAnalysis,
    pub(crate) aggs: &'p [AggSpec],
    pub(crate) streams: Vec<ChunkStream>,
    pub(crate) layout: DimLayout,
}

/// Validate the options and plan shape, run the one-time SOA rewrite, open
/// the chunked stream(s) over the aggregate's input, and lay the aggregates
/// onto SBox dimensions — the preamble shared by [`run_online`] and
/// [`crate::run_online_grouped`]. `caller` names the entry point in errors.
pub(crate) fn open_aggregate<'p>(
    plan: &'p LogicalPlan,
    catalog: &Catalog,
    opts: &QueryOptions,
    ctx: &RunCtx,
    observed: &[sa_expr::Expr],
    caller: &str,
) -> Result<OpenedAggregate<'p>> {
    if opts.chunk_rows == 0 {
        // A zero hint would degenerate the pull loop into one-row chunks
        // (with a snapshot after every row); reject it loudly instead.
        return Err(Error::InvalidOptions(
            "chunk_rows must be at least 1".into(),
        ));
    }
    if opts.parallelism == 0 {
        // Zero workers cannot make progress; mirror the chunk_rows check
        // rather than silently rounding up to 1.
        return Err(Error::InvalidOptions(
            "parallelism must be at least 1".into(),
        ));
    }
    let analysis = rewrite(plan, catalog).map_err(ExecError::Plan)?;
    let LogicalPlan::Aggregate { aggs, input } = plan else {
        return Err(Error::Unsupported(format!(
            "{caller} requires an aggregate at the plan root"
        )));
    };
    let exec_opts = ExecOptions {
        seed: opts.seed,
        shuffle_scan: opts.shuffle_scan,
        disable_pushdown: opts.disable_pushdown,
        scan_obs: ctx.scan_obs.clone(),
        // The stream carries the aggregate's INPUT; analyze the full plan
        // (plus the caller's GROUP BY keys) so the scans prune down to what
        // the estimator actually reads, not the input's whole schema.
        scan_cols: Some(sa_plan::ScanColumnMap::analyze_with(plan, observed)),
    };
    let streams = match (&ctx.shared, opts.parallelism) {
        // Attach the sequential loop to the engine's shared circular scan:
        // same sample realization semantics (one Bernoulli coin per consumed
        // row), but the scan origin is wherever the hub's head currently is
        // — a scan-prefix origin shift the Prop-8 scaling is invariant to.
        // A shuffled scan cannot ride the hub (its gather order is shared
        // state), so it always opens a private stream.
        (Some(hub), 1) if !opts.shuffle_scan => {
            vec![open_shared_stream(input, catalog, &exec_opts, hub)?]
        }
        _ => open_stream_partitioned(input, catalog, &exec_opts, opts.parallelism)?,
    };
    let layout = layout_dims(aggs, streams[0].schema())?;
    Ok(OpenedAggregate {
        analysis,
        aggs,
        streams,
        layout,
    })
}

/// A union-free region's GUS compacted with one WOR(consumed, available)
/// factor per partially scanned relation — the random-scan-order prefix
/// model (Proposition 8). Fully covered relations contribute the identity;
/// relations with nothing consumed yet are skipped too (the estimate is 0
/// there and a 0-draw WOR would be the degenerate null sampler). `progress`
/// may be a single stream's report or the element-wise sum over partitioned
/// workers — slice-relative coverage sums to the true per-relation prefix.
pub(crate) fn scan_scaled_gus(
    region_gus: &GusParams,
    relations: &[String],
    progress: &[(u64, u64)],
) -> Result<GusParams> {
    let mut gus = region_gus.clone();
    for (name, &(consumed, available)) in relations.iter().zip(progress) {
        if consumed == 0 || consumed >= available {
            continue;
        }
        let prefix = GusParams::wor(name, consumed, available)
            .and_then(|g| g.embed_by_name(region_gus.schema().clone()))
            .and_then(|g| gus.compact(&g))
            .map_err(ExecError::Core)?;
        gus = prefix;
    }
    Ok(gus)
}

/// The internal invariant error for [`scale_gus_tree`]: the stream's
/// progress report and the plan's GUS structure disagree. The executor is
/// built from the same plan the analysis walked, so any mismatch is a
/// driver bug, not a user error.
fn progress_shape_mismatch(tree: &GusTree, prog: &ProgressTree) -> Error {
    Error::Unsupported(format!(
        "internal: the stream's scan-progress shape does not match the plan's GUS \
         structure (plan node: {}, progress node: {}); please report this as a bug",
        match tree {
            GusTree::Leaf { rels, .. } => format!("union-free region over {rels:?}"),
            GusTree::Union { .. } => "union".into(),
            GusTree::Join { .. } => "join".into(),
        },
        match prog {
            ProgressTree::Leaf(cov) => format!("flat coverage of {} relations", cov.len()),
            ProgressTree::Union { .. } => "union".into(),
            ProgressTree::Concat(..) => "join".into(),
        }
    ))
}

/// Scale the plan's GUS to the scanned population by walking its union/join
/// structure ([`GusTree`]) against the stream's per-branch coverage
/// ([`ProgressTree`]) — per-branch prefix composition:
///
/// * a union-free region gets its own Prop-8 WOR factors
///   ([`scan_scaled_gus`]);
/// * a union whose second branch has not started is read as the **first
///   branch alone** (no tuple unique to branch 2 can have arrived, so the
///   consumed prefix *is* a branch-1 sample — unioning an untouched G₂
///   would claim coverage the stream does not have);
/// * once branch 2 starts, branch 1 is complete (the streamed union drains
///   it fully first) and the snapshot reads
///   `union(G₁, G₂ ⊙ WOR(k₂, N))` — Prop 7 over the re-scaled branch
///   designs;
/// * joins compact their scaled sides (Prop 6/8). A flat coverage report
///   under a union/join node means the executor materialized that region
///   (e.g. a join build side): every unit is consumed, so the same flat
///   report recurses into both sides.
///
/// The executor's progress tree can only *lose* structure relative to the
/// plan's (materialization flattens); any other pairing is an internal
/// invariant violation.
pub(crate) fn scale_gus_tree(tree: &GusTree, prog: &ProgressTree) -> Result<GusParams> {
    match (tree, prog) {
        (GusTree::Leaf { gus, rels }, ProgressTree::Leaf(cov)) => {
            if cov.len() != rels.len() {
                return Err(progress_shape_mismatch(tree, prog));
            }
            scan_scaled_gus(gus, rels, cov)
        }
        (
            GusTree::Union { left, right },
            ProgressTree::Union {
                left: pl,
                right: pr,
                second_started,
            },
        ) => {
            let l = scale_gus_tree(left, pl)?;
            if !*second_started {
                return Ok(l);
            }
            let r = scale_gus_tree(right, pr)?;
            l.union(&r).map_err(|e| Error::Exec(ExecError::Core(e)))
        }
        (GusTree::Union { left, right }, ProgressTree::Leaf(_)) => {
            // Materialized union: one flat, fully-consumed report stands
            // for both branches.
            let l = scale_gus_tree(left, prog)?;
            let r = scale_gus_tree(right, prog)?;
            l.union(&r).map_err(|e| Error::Exec(ExecError::Core(e)))
        }
        (GusTree::Join { left, right }, ProgressTree::Concat(pl, pr)) => {
            let l = scale_gus_tree(left, pl)?;
            let r = scale_gus_tree(right, pr)?;
            l.compact(&r).map_err(|e| Error::Exec(ExecError::Core(e)))
        }
        (GusTree::Join { left, right }, ProgressTree::Leaf(cov)) => {
            // Flattened join report: the probe side's relations come first
            // (scan order), the build side's after.
            let k = left.n_rels();
            if cov.len() != tree.n_rels() {
                return Err(progress_shape_mismatch(tree, prog));
            }
            let l = scale_gus_tree(left, &ProgressTree::Leaf(cov[..k].to_vec()))?;
            let r = scale_gus_tree(right, &ProgressTree::Leaf(cov[k..].to_vec()))?;
            l.compact(&r).map_err(|e| Error::Exec(ExecError::Core(e)))
        }
        (t, p) => Err(progress_shape_mismatch(t, p)),
    }
}

/// The largest relative CI half-width across the aggregates, `None` when
/// any variance is not yet estimable (so a CI target cannot fire early on
/// partial information).
pub(crate) fn worst_rel_half_width(aggs: &[AggResult]) -> Option<f64> {
    let mut worst = 0.0f64;
    for a in aggs {
        let ci = a.ci_normal.as_ref()?;
        worst = worst.max(ci.relative_half_width());
    }
    Some(worst)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use sa_exec::{f_vector, open_stream};
    use sa_expr::col;
    use sa_plan::AggSpec;
    use sa_sampling::SamplingMethod;
    use sa_storage::{DataType, Field, Schema, TableBuilder, Value};

    fn catalog(rows: i64) -> Catalog {
        let mut c = Catalog::new();
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Float),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema);
        for i in 0..rows {
            b.push_row(&[Value::Int(i % 10), Value::Float(1.0 + (i % 7) as f64)])
                .unwrap();
        }
        c.register(b.finish().unwrap()).unwrap();
        c
    }

    fn sum_plan(p: f64) -> LogicalPlan {
        LogicalPlan::scan("t")
            .sample(SamplingMethod::Bernoulli { p })
            .aggregate(vec![AggSpec::sum(col("v"), "s")])
    }

    #[test]
    fn snapshots_are_emitted_per_chunk_and_monotone() {
        let c = catalog(5000);
        let opts = OnlineOptions {
            seed: 3,
            chunk_rows: 256,
            ..Default::default()
        };
        let mut rows_seen = Vec::new();
        let r = run_online(&sum_plan(0.5), &c, &opts, |s| rows_seen.push(s.rows)).unwrap();
        assert_eq!(r.reason, StopReason::Exhausted);
        assert_eq!(r.chunks as usize, rows_seen.len());
        assert!(rows_seen.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*rows_seen.last().unwrap(), r.snapshot.rows);
        assert!(r.snapshot.rows > 1000, "50% of 5000 ≈ 2500");
    }

    #[test]
    fn exhausted_run_matches_batch_estimate() {
        let c = catalog(4000);
        let plan = sum_plan(0.3);
        let opts = OnlineOptions {
            seed: 9,
            chunk_rows: 128,
            ..Default::default()
        };
        let online = run_online(&plan, &c, &opts, |_| {}).unwrap();
        // Batch over the SAME sample realization: collect the stream.
        let LogicalPlan::Aggregate { aggs, input } = &plan else {
            unreachable!()
        };
        let mut stream = open_stream(
            input,
            &c,
            &ExecOptions {
                seed: 9,
                ..Default::default()
            },
        )
        .unwrap();
        let layout = layout_dims(aggs, stream.schema()).unwrap();
        let mut batch = sa_core::GroupedMoments::new(1, layout.dims());
        loop {
            let chunk = stream.next_chunk(4096).unwrap();
            if chunk.is_empty() {
                break;
            }
            for row in &chunk {
                batch
                    .push(&row.lineage, &f_vector(&layout, row).unwrap())
                    .unwrap();
            }
        }
        let report =
            sa_core::estimate_from_sample_moments(&online.analysis.gus, &batch.finish()).unwrap();
        let est = online.snapshot.aggs[0].estimate;
        assert!((est - report.estimate[0]).abs() < 1e-9 * (1.0 + est.abs()));
        let (vo, vb) = (
            online.snapshot.aggs[0].variance.unwrap(),
            report.variance(0).unwrap(),
        );
        assert!((vo - vb).abs() < 1e-9 * (1.0 + vb.abs()), "{vo} vs {vb}");
    }

    #[test]
    fn scan_scaling_targets_the_full_population() {
        // 20k rows of mean 4.0 → truth 80k. Stop after ~1/10 of the sample:
        // the scaled estimate must be near the full answer, the raw prefix
        // estimate near a tenth of it.
        let c = catalog(20_000);
        let truth = 80_000.0; // v cycles 1..=7 (mean 4.0) over 20k rows
        let opts = |scale| OnlineOptions {
            seed: 2,
            chunk_rows: 200,
            rule: StoppingRule::rows(1800),
            scale_to_population: scale,
            ..Default::default()
        };
        let scaled = run_online(&sum_plan(0.9), &c, &opts(true), |_| {}).unwrap();
        let raw = run_online(&sum_plan(0.9), &c, &opts(false), |_| {}).unwrap();
        let (es, er) = (
            scaled.snapshot.aggs[0].estimate,
            raw.snapshot.aggs[0].estimate,
        );
        assert!(
            (es - truth).abs() < 0.1 * truth,
            "scaled {es} should be near {truth}"
        );
        assert!(
            er < 0.25 * truth,
            "raw prefix estimate {er} should cover only ~1/10 of {truth}"
        );
        // Scaled intervals are wider: they also carry the unscanned-data
        // uncertainty.
        assert!(scaled.snapshot.aggs[0].variance.unwrap() > raw.snapshot.aggs[0].variance.unwrap());
    }

    #[test]
    fn row_budget_stops_early() {
        let c = catalog(20_000);
        let opts = OnlineOptions {
            seed: 1,
            chunk_rows: 100,
            rule: StoppingRule::rows(500),
            ..Default::default()
        };
        let r = run_online(&sum_plan(0.9), &c, &opts, |_| {}).unwrap();
        assert_eq!(r.reason, StopReason::RowBudget);
        assert!(r.snapshot.rows >= 500);
        assert!(
            r.snapshot.rows < 2000,
            "stopped long before the ~18k sample drained: {}",
            r.snapshot.rows
        );
    }

    #[test]
    fn time_budget_stops() {
        let c = catalog(2000);
        let opts = OnlineOptions {
            seed: 1,
            chunk_rows: 10,
            rule: StoppingRule::time(Duration::ZERO),
            ..Default::default()
        };
        let r = run_online(&sum_plan(0.9), &c, &opts, |_| {}).unwrap();
        assert_eq!(r.reason, StopReason::TimeBudget);
        assert_eq!(r.chunks, 1);
    }

    #[test]
    fn ci_rule_converges_on_big_sample() {
        let c = catalog(50_000);
        let opts = OnlineOptions {
            seed: 4,
            chunk_rows: 512,
            rule: StoppingRule::ci(0.05, 0.95),
            ..Default::default()
        };
        let r = run_online(&sum_plan(0.5), &c, &opts, |_| {}).unwrap();
        assert_eq!(r.reason, StopReason::CiConverged);
        assert!(r.snapshot.rel_half_width.unwrap() <= 0.05);
        // It genuinely stopped early.
        assert!(r.snapshot.rows < 20_000, "rows = {}", r.snapshot.rows);
    }

    #[test]
    fn sql_within_clause_drives_the_rule() {
        let c = catalog(50_000);
        let opts = OnlineOptions {
            seed: 4,
            chunk_rows: 512,
            ..Default::default()
        };
        let mut snaps = 0u64;
        let r = run_online_sql(
            "SELECT SUM(v) AS s FROM t TABLESAMPLE (50 PERCENT) \
             WITHIN 5 PERCENT CONFIDENCE 95",
            &c,
            &opts,
            |_| snaps += 1,
        )
        .unwrap();
        assert_eq!(r.reason, StopReason::CiConverged);
        assert_eq!(snaps, r.chunks);
        assert!((r.snapshot.confidence - 0.95).abs() < 1e-12);
    }

    #[test]
    fn group_by_rejected_for_online_sql() {
        let c = catalog(100);
        let err = run_online_sql(
            "SELECT k, SUM(v) FROM t TABLESAMPLE (50 PERCENT) GROUP BY k",
            &c,
            &OnlineOptions::default(),
            |_| {},
        )
        .unwrap_err();
        assert!(err.to_string().contains("GROUP BY"), "{err}");
    }

    fn union_plan(p: f64) -> LogicalPlan {
        LogicalPlan::scan("t")
            .sample(SamplingMethod::Bernoulli { p })
            .union_samples(LogicalPlan::scan("t").sample(SamplingMethod::Bernoulli { p }))
            .aggregate(vec![AggSpec::sum(col("v"), "s")])
    }

    #[test]
    fn union_scaling_runs_online_and_matches_batch_at_exhaustion() {
        // Per-branch prefix composition: the union plan now scales to the
        // population mid-stream, and at exhaustion every WOR factor is the
        // identity, so the readout equals the batch union estimator on the
        // same realized sample.
        let c = catalog(2000);
        let plan = union_plan(0.4);
        let opts = OnlineOptions {
            seed: 6,
            chunk_rows: 128,
            ..Default::default()
        };
        let online = run_online(&plan, &c, &opts, |_| {}).unwrap();
        assert_eq!(online.reason, StopReason::Exhausted);
        assert!(online.snapshot.rows > 0);
        let LogicalPlan::Aggregate { aggs, input } = &plan else {
            unreachable!()
        };
        let exec_opts = ExecOptions {
            seed: 6,
            ..Default::default()
        };
        let mut stream = open_stream(input, &c, &exec_opts).unwrap();
        let layout = layout_dims(aggs, stream.schema()).unwrap();
        let mut batch = sa_core::GroupedMoments::new(online.analysis.schema.n(), layout.dims());
        loop {
            let chunk = stream.next_chunk(4096).unwrap();
            if chunk.is_empty() {
                break;
            }
            for row in &chunk {
                batch
                    .push(&row.lineage, &f_vector(&layout, row).unwrap())
                    .unwrap();
            }
        }
        let report =
            sa_core::estimate_from_sample_moments(&online.analysis.gus, &batch.finish()).unwrap();
        let est = online.snapshot.aggs[0].estimate;
        assert!(
            (est - report.estimate[0]).abs() < 1e-9 * (1.0 + est.abs()),
            "{est} vs {}",
            report.estimate[0]
        );
        let (vo, vb) = (
            online.snapshot.aggs[0].variance.unwrap(),
            report.variance(0).unwrap(),
        );
        assert!((vo - vb).abs() < 1e-9 * (1.0 + vb.abs()), "{vo} vs {vb}");
    }

    #[test]
    fn union_mid_scan_scaling_targets_the_population() {
        // Stop the union run early (inside branch 1): the scaled estimate
        // must target the full answer, not the scanned prefix of it.
        let c = catalog(20_000);
        let truth = 80_000.0; // v cycles 1..=7 (mean 4.0) over 20k rows
        let opts = OnlineOptions {
            seed: 11,
            chunk_rows: 200,
            rule: StoppingRule::rows(1500),
            ..Default::default()
        };
        let r = run_online(&union_plan(0.5), &c, &opts, |_| {}).unwrap();
        assert_eq!(r.reason, StopReason::RowBudget);
        let (consumed, available) = r.snapshot.progress[0];
        assert!(consumed < available, "stopped mid-scan");
        let est = r.snapshot.aggs[0].estimate;
        assert!(
            (est - truth).abs() < 0.15 * truth,
            "scaled union estimate {est} should be near {truth}"
        );
    }

    #[test]
    fn union_plans_still_refuse_partitioned_workers() {
        // The parallel path does not partition union plans; the refusal
        // names the workaround precisely.
        let c = catalog(2000);
        let opts = OnlineOptions {
            parallelism: 2,
            ..Default::default()
        };
        let err = run_online(&union_plan(0.4), &c, &opts, |_| {}).unwrap_err();
        assert!(
            err.to_string().contains("parallelism = 1"),
            "the refusal must name the single-stream workaround: {err}"
        );
    }

    #[test]
    fn zero_chunk_rows_rejected() {
        // chunk_rows = 0 would degenerate next_chunk's hint into 1-row
        // pulls (a snapshot per row); the driver refuses it up front.
        let c = catalog(100);
        let opts = OnlineOptions {
            chunk_rows: 0,
            ..Default::default()
        };
        let err = run_online(&sum_plan(0.5), &c, &opts, |_| {}).unwrap_err();
        assert!(matches!(err, Error::InvalidOptions(_)), "{err}");
        assert!(err.to_string().contains("chunk_rows"), "{err}");
    }

    #[test]
    fn non_aggregate_root_rejected() {
        let c = catalog(10);
        let err = run_online(
            &LogicalPlan::scan("t"),
            &c,
            &OnlineOptions::default(),
            |_| {},
        )
        .unwrap_err();
        assert!(matches!(err, Error::Unsupported(_)));
    }

    #[test]
    fn empty_sample_still_produces_a_final_snapshot() {
        // Empty table → empty stream on the very first pull; the loop must
        // still emit one snapshot and stop as Exhausted. (A `p = 0` sampler,
        // by contrast, is a degenerate GUS with a = 0 and errors, exactly
        // like the batch driver.)
        let c = catalog(0);
        let r = run_online(&sum_plan(0.5), &c, &OnlineOptions::default(), |_| {}).unwrap();
        assert_eq!(r.reason, StopReason::Exhausted);
        assert_eq!(r.chunks, 1);
        assert_eq!(r.snapshot.rows, 0);
        assert_eq!(r.snapshot.aggs[0].estimate, 0.0);
        let degenerate = run_online(&sum_plan(0.0), &c, &OnlineOptions::default(), |_| {});
        assert!(matches!(degenerate, Err(Error::Core(_))));
    }
}
