//! The unified public error type for the engine, sessions and drivers.
//!
//! Every layer below the serving API — planning, SQL, execution,
//! estimation — has its own error enum; [`Error`] wraps them all behind one
//! public `Result` shape so a [`crate::QueryHandle`] (and the deprecated
//! free-function drivers) surface a single error type. `From` impls exist
//! for each wrapped error, including the storage and expression errors that
//! previously had to be routed through `ExecError` by hand.

use std::fmt;

/// Errors from the engine, sessions, and the progressive estimation loop.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Propagated execution error (streaming, estimation).
    Exec(sa_exec::ExecError),
    /// Propagated estimator error.
    Core(sa_core::CoreError),
    /// Propagated plan error (rewriting).
    Plan(sa_plan::PlanError),
    /// Propagated SQL front-end error.
    Sql(sa_sql::SqlError),
    /// A plan or option combination the online driver cannot handle.
    Unsupported(String),
    /// An option value that is outright invalid (e.g. `chunk_rows == 0`).
    InvalidOptions(String),
    /// The engine's admission controller refused the query: `active`
    /// queries were already running against a limit of `max`.
    Busy {
        /// Queries in flight when admission was attempted.
        active: usize,
        /// The engine's `max_concurrent` limit.
        max: usize,
    },
}

/// Former name of [`Error`]; the enum was renamed when the Engine/Session
/// API unified the online and batch error surfaces.
#[deprecated(since = "0.1.0", note = "renamed to `sa_online::Error`")]
pub type OnlineError = Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Exec(e) => write!(f, "{e}"),
            Error::Core(e) => write!(f, "{e}"),
            Error::Plan(e) => write!(f, "{e}"),
            Error::Sql(e) => write!(f, "{e}"),
            Error::Unsupported(msg) => write!(f, "unsupported online query: {msg}"),
            Error::InvalidOptions(msg) => write!(f, "invalid online options: {msg}"),
            Error::Busy { active, max } => write!(
                f,
                "engine busy: {active} queries active (limit {max}); retry later"
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Exec(e) => Some(e),
            Error::Core(e) => Some(e),
            Error::Plan(e) => Some(e),
            Error::Sql(e) => Some(e),
            Error::Unsupported(_) | Error::InvalidOptions(_) | Error::Busy { .. } => None,
        }
    }
}

impl From<sa_exec::ExecError> for Error {
    fn from(e: sa_exec::ExecError) -> Self {
        Error::Exec(e)
    }
}
impl From<sa_core::CoreError> for Error {
    fn from(e: sa_core::CoreError) -> Self {
        Error::Core(e)
    }
}
impl From<sa_plan::PlanError> for Error {
    fn from(e: sa_plan::PlanError) -> Self {
        Error::Plan(e)
    }
}
impl From<sa_sql::SqlError> for Error {
    fn from(e: sa_sql::SqlError) -> Self {
        Error::Sql(e)
    }
}
impl From<sa_storage::StorageError> for Error {
    fn from(e: sa_storage::StorageError) -> Self {
        Error::Exec(sa_exec::ExecError::Storage(e))
    }
}
impl From<sa_expr::ExprError> for Error {
    fn from(e: sa_expr::ExprError) -> Self {
        Error::Exec(sa_exec::ExecError::Expr(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_chain() {
        let e: Error = sa_core::CoreError::Degenerate("x".into()).into();
        assert!(e.to_string().contains('x'));
        assert!(std::error::Error::source(&e).is_some());
        let u = Error::Unsupported("why".into());
        assert!(u.to_string().contains("why"));
        assert!(std::error::Error::source(&u).is_none());
        let i = Error::InvalidOptions("chunk_rows".into());
        assert!(i.to_string().contains("chunk_rows"));
        assert!(std::error::Error::source(&i).is_none());
    }

    #[test]
    fn storage_and_expr_errors_route_through_exec() {
        let e: Error = sa_storage::StorageError::UnknownTable {
            name: "nope".into(),
        }
        .into();
        assert!(matches!(e, Error::Exec(sa_exec::ExecError::Storage(_))));
        assert!(e.to_string().contains("nope"));
        let e: Error = sa_expr::ExprError::DivisionByZero.into();
        assert!(matches!(e, Error::Exec(sa_exec::ExecError::Expr(_))));
    }

    #[test]
    fn busy_reports_both_counts() {
        let b = Error::Busy { active: 8, max: 8 };
        assert!(b.to_string().contains("8 queries active"));
        assert!(b.to_string().contains("limit 8"));
        assert!(std::error::Error::source(&b).is_none());
    }

    #[test]
    fn deprecated_alias_still_names_the_same_type() {
        #[allow(deprecated)]
        fn takes_old(e: OnlineError) -> Error {
            e
        }
        let e = takes_old(Error::Unsupported("alias".into()));
        assert!(e.to_string().contains("alias"));
    }
}
