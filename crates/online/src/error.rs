//! Error type for the online aggregation driver.

use std::fmt;

/// Errors from the progressive estimation loop.
#[derive(Debug, Clone, PartialEq)]
pub enum OnlineError {
    /// Propagated execution error (streaming, estimation).
    Exec(sa_exec::ExecError),
    /// Propagated estimator error.
    Core(sa_core::CoreError),
    /// Propagated plan error (rewriting).
    Plan(sa_plan::PlanError),
    /// Propagated SQL front-end error.
    Sql(sa_sql::SqlError),
    /// A plan or option combination the online driver cannot handle.
    Unsupported(String),
    /// An option value that is outright invalid (e.g. `chunk_rows == 0`).
    InvalidOptions(String),
}

impl fmt::Display for OnlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OnlineError::Exec(e) => write!(f, "{e}"),
            OnlineError::Core(e) => write!(f, "{e}"),
            OnlineError::Plan(e) => write!(f, "{e}"),
            OnlineError::Sql(e) => write!(f, "{e}"),
            OnlineError::Unsupported(msg) => write!(f, "unsupported online query: {msg}"),
            OnlineError::InvalidOptions(msg) => write!(f, "invalid online options: {msg}"),
        }
    }
}

impl std::error::Error for OnlineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OnlineError::Exec(e) => Some(e),
            OnlineError::Core(e) => Some(e),
            OnlineError::Plan(e) => Some(e),
            OnlineError::Sql(e) => Some(e),
            OnlineError::Unsupported(_) | OnlineError::InvalidOptions(_) => None,
        }
    }
}

impl From<sa_exec::ExecError> for OnlineError {
    fn from(e: sa_exec::ExecError) -> Self {
        OnlineError::Exec(e)
    }
}
impl From<sa_core::CoreError> for OnlineError {
    fn from(e: sa_core::CoreError) -> Self {
        OnlineError::Core(e)
    }
}
impl From<sa_plan::PlanError> for OnlineError {
    fn from(e: sa_plan::PlanError) -> Self {
        OnlineError::Plan(e)
    }
}
impl From<sa_sql::SqlError> for OnlineError {
    fn from(e: sa_sql::SqlError) -> Self {
        OnlineError::Sql(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_chain() {
        let e: OnlineError = sa_core::CoreError::Degenerate("x".into()).into();
        assert!(e.to_string().contains('x'));
        assert!(std::error::Error::source(&e).is_some());
        let u = OnlineError::Unsupported("why".into());
        assert!(u.to_string().contains("why"));
        assert!(std::error::Error::source(&u).is_none());
        let i = OnlineError::InvalidOptions("chunk_rows".into());
        assert!(i.to_string().contains("chunk_rows"));
        assert!(std::error::Error::source(&i).is_none());
    }
}
