//! The unified options and result surface of the Engine/Session API.
//!
//! Historically every entry point had its own options struct and result
//! shape: `OnlineOptions` for scalar online runs, `GroupedOnlineOptions`
//! (which duplicated every scalar field behind an `.online` member) for
//! grouped runs, and `ApproxOptions` for the batch drivers. [`QueryOptions`]
//! collapses the online pair into one flat struct — scalar vs. grouped is
//! decided by the query (its `GROUP BY` list), not by which options type
//! the caller picked — and [`Snapshot`] / [`QueryResult`] make the result
//! shape a variant rather than a separate entry point.

use std::time::Duration;

use sa_core::GusParams;
use sa_exec::{ApproxResult, GroupedApproxResult};
use sa_plan::{SoaAnalysis, StopReason, StoppingRule};

#[allow(deprecated)]
use crate::driver::OnlineOptions;
use crate::driver::{OnlineResult, ProgressSnapshot};
#[allow(deprecated)]
use crate::grouped::GroupedOnlineOptions;
use crate::grouped::{GroupedOnlineResult, GroupedProgressSnapshot};

/// Options for one query run through the [`crate::Engine`] — the unified
/// successor of `OnlineOptions` and `GroupedOnlineOptions` (grouped runs no
/// longer nest the scalar options behind an `.online` member; the grouped
/// `ci_top_k` policy is a flat field that scalar runs simply ignore).
#[derive(Debug, Clone)]
pub struct QueryOptions {
    /// Seed for the plan's sampling operators (the streamed sample
    /// realization is fully determined by `(plan, seed)`; sessions assign a
    /// stable per-session seed so estimates stay comparable across runs).
    pub seed: u64,
    /// Target rows per pulled chunk (operators may over/under-fill).
    pub chunk_rows: usize,
    /// Confidence level for reported intervals when the stopping rule has
    /// no CI target of its own.
    pub confidence: f64,
    /// When to stop early. [`StoppingRule::exhaustive`] runs the whole
    /// sample. For grouped queries the rule's CI target is judged per
    /// group.
    pub rule: StoppingRule,
    /// Scale mid-stream estimates to the full population by compacting a
    /// per-relation WOR(scanned, total) factor onto the plan GUS (the
    /// random-scan-order assumption of online aggregation). Default `true`;
    /// with `false`, snapshots read the raw prefix estimate under the plan
    /// GUS.
    pub scale_to_population: bool,
    /// Number of worker threads driving the sampled plan. `1` (the
    /// default) runs the classic single-threaded loop — byte-identical
    /// snapshots for a fixed seed, and the only mode that can attach to an
    /// engine's shared scan. `0` is rejected.
    pub parallelism: usize,
    /// Grow the pull hint as the estimate stabilizes (see the driver
    /// module docs). Default `false`.
    pub adaptive_chunks: bool,
    /// Visit the base table's blocks in a seeded random permutation
    /// instead of physical order (`--shuffle-scan` in the CLI). The
    /// scan-progress scaling assumes the scanned prefix is a uniform random
    /// subset of the sampling units; on physically ordered (e.g.
    /// value-sorted) tables that assumption fails and mid-stream intervals
    /// undercover. Shuffling restores it at the block level. The
    /// permutation is fully determined by `(seed, parallelism, worker)`, so
    /// runs stay byte-reproducible; shuffled queries always open a private
    /// scan (they cannot attach to a shared hub, whose gather order is
    /// shared state). Default `false` — physical scan order, which keeps
    /// columnar gathers perfectly sequential.
    pub shuffle_scan: bool,
    /// Grouped queries only: judge the CI stopping target on the `K`
    /// groups with the largest absolute (first-aggregate) estimates — the
    /// long-tail policy. Tail groups are still estimated and reported;
    /// they just cannot postpone termination. Ignored by scalar queries.
    /// `None` (default): every discovered group must meet the target.
    pub ci_top_k: Option<usize>,
    /// Disable projection/predicate pushdown into the streaming scans (see
    /// [`sa_exec::ExecOptions::disable_pushdown`]). The realized sample
    /// and every estimate are identical either way; this exists for
    /// benchmark baselines and equivalence tests. Default `false`.
    pub disable_pushdown: bool,
    /// Hard wall-clock deadline for the whole query. When it expires the
    /// loop cancels itself and reports the last valid snapshot with
    /// [`StopReason::Deadline`] — still an unbiased scan-prefix estimate.
    /// Unlike [`StoppingRule::with_time_budget`] (a soft stop criterion the
    /// rule *wants*), the deadline is an upper bound the serving layer
    /// *imposes*; both can be set and the deadline always wins. `None`
    /// (default): no deadline.
    pub deadline: Option<Duration>,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            seed: 0,
            chunk_rows: 1024,
            confidence: 0.95,
            rule: StoppingRule::exhaustive(),
            scale_to_population: true,
            parallelism: 1,
            adaptive_chunks: false,
            shuffle_scan: false,
            ci_top_k: None,
            disable_pushdown: false,
            deadline: None,
        }
    }
}

#[allow(deprecated)]
impl From<&OnlineOptions> for QueryOptions {
    fn from(o: &OnlineOptions) -> Self {
        QueryOptions {
            seed: o.seed,
            chunk_rows: o.chunk_rows,
            confidence: o.confidence,
            rule: o.rule.clone(),
            scale_to_population: o.scale_to_population,
            parallelism: o.parallelism,
            adaptive_chunks: o.adaptive_chunks,
            shuffle_scan: false,
            ci_top_k: None,
            disable_pushdown: false,
            deadline: None,
        }
    }
}

#[allow(deprecated)]
impl From<&GroupedOnlineOptions> for QueryOptions {
    fn from(o: &GroupedOnlineOptions) -> Self {
        QueryOptions {
            ci_top_k: o.ci_top_k,
            ..QueryOptions::from(&o.online)
        }
    }
}

/// One progressive snapshot, scalar or grouped — the unified shape a
/// [`crate::QueryHandle`] streams and a [`QueryResult`] finishes with.
#[derive(Debug, Clone)]
pub enum Snapshot {
    /// A scalar query's snapshot (no `GROUP BY`).
    Scalar(ProgressSnapshot),
    /// A grouped query's snapshot (one entry per discovered group).
    Grouped(GroupedProgressSnapshot),
}

impl Snapshot {
    /// Cumulative sampled result tuples consumed.
    pub fn rows(&self) -> u64 {
        match self {
            Snapshot::Scalar(s) => s.rows,
            Snapshot::Grouped(s) => s.rows,
        }
    }

    /// 1-based snapshot index.
    pub fn chunk(&self) -> u64 {
        match self {
            Snapshot::Scalar(s) => s.chunk,
            Snapshot::Grouped(s) => s.chunk,
        }
    }

    /// Worst (largest) relative CI half-width the stopping rule is judged
    /// on (tracked groups only, for grouped snapshots).
    pub fn rel_half_width(&self) -> Option<f64> {
        match self {
            Snapshot::Scalar(s) => s.rel_half_width,
            Snapshot::Grouped(s) => s.rel_half_width,
        }
    }

    /// Confidence level the snapshot's intervals were computed at.
    pub fn confidence(&self) -> f64 {
        match self {
            Snapshot::Scalar(s) => s.confidence,
            Snapshot::Grouped(s) => s.confidence,
        }
    }

    /// Per-relation `(consumed, available)` scan coverage.
    pub fn progress(&self) -> &[(u64, u64)] {
        match self {
            Snapshot::Scalar(s) => &s.progress,
            Snapshot::Grouped(s) => &s.progress,
        }
    }

    /// The GUS the snapshot was read under.
    pub fn gus(&self) -> &GusParams {
        match self {
            Snapshot::Scalar(s) => &s.gus,
            Snapshot::Grouped(s) => &s.gus,
        }
    }

    /// Wall time since the loop started.
    pub fn elapsed(&self) -> Duration {
        match self {
            Snapshot::Scalar(s) => s.elapsed,
            Snapshot::Grouped(s) => s.elapsed,
        }
    }

    /// The scalar snapshot, if this is one.
    pub fn as_scalar(&self) -> Option<&ProgressSnapshot> {
        match self {
            Snapshot::Scalar(s) => Some(s),
            Snapshot::Grouped(_) => None,
        }
    }

    /// The grouped snapshot, if this is one.
    pub fn as_grouped(&self) -> Option<&GroupedProgressSnapshot> {
        match self {
            Snapshot::Scalar(_) => None,
            Snapshot::Grouped(s) => Some(s),
        }
    }
}

/// The outcome of a progressive run through the Engine/Session API:
/// scalar vs. grouped is a variant of [`QueryResult::snapshot`], not a
/// separate entry point.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Why the loop stopped.
    pub reason: StopReason,
    /// The last emitted snapshot (the final estimates).
    pub snapshot: Snapshot,
    /// Number of snapshots emitted.
    pub chunks: u64,
    /// The SOA analysis (top GUS, lineage schema, rewrite trace).
    pub analysis: SoaAnalysis,
}

impl From<OnlineResult> for QueryResult {
    fn from(r: OnlineResult) -> Self {
        QueryResult {
            reason: r.reason,
            snapshot: Snapshot::Scalar(r.snapshot),
            chunks: r.chunks,
            analysis: r.analysis,
        }
    }
}

impl From<GroupedOnlineResult> for QueryResult {
    fn from(r: GroupedOnlineResult) -> Self {
        QueryResult {
            reason: r.reason,
            snapshot: Snapshot::Grouped(r.snapshot),
            chunks: r.chunks,
            analysis: r.analysis,
        }
    }
}

/// The outcome of a one-shot batch run ([`crate::QueryBuilder::batch`]):
/// the whole sample is consumed in one pass, no snapshots are streamed.
#[derive(Debug, Clone)]
pub enum BatchOutput {
    /// A scalar query's estimates.
    Scalar(ApproxResult),
    /// A grouped query's per-group estimates.
    Grouped(GroupedApproxResult),
}

impl BatchOutput {
    /// The scalar result, if this is one.
    pub fn as_scalar(&self) -> Option<&ApproxResult> {
        match self {
            BatchOutput::Scalar(r) => Some(r),
            BatchOutput::Grouped(_) => None,
        }
    }

    /// The grouped result, if this is one.
    pub fn as_grouped(&self) -> Option<&GroupedApproxResult> {
        match self {
            BatchOutput::Scalar(_) => None,
            BatchOutput::Grouped(r) => Some(r),
        }
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    /// The satellite regression: the unified defaults must match the old
    /// option structs field-for-field, so migrating a caller from
    /// `OnlineOptions::default()` / `GroupedOnlineOptions::default()` to
    /// `QueryOptions::default()` cannot change any run's semantics.
    #[test]
    fn defaults_match_the_old_option_structs_field_for_field() {
        let new = QueryOptions::default();
        let old = OnlineOptions::default();
        assert_eq!(new.seed, old.seed);
        assert_eq!(new.chunk_rows, old.chunk_rows);
        assert_eq!(new.confidence, old.confidence);
        assert_eq!(new.rule, old.rule);
        assert_eq!(new.scale_to_population, old.scale_to_population);
        assert_eq!(new.parallelism, old.parallelism);
        assert_eq!(new.adaptive_chunks, old.adaptive_chunks);
        let grouped = GroupedOnlineOptions::default();
        assert_eq!(new.ci_top_k, grouped.ci_top_k);
        // And the grouped struct's nested defaults were identical to the
        // scalar ones (the duplication QueryOptions collapses).
        assert_eq!(grouped.online.seed, old.seed);
        assert_eq!(grouped.online.chunk_rows, old.chunk_rows);
        assert_eq!(grouped.online.confidence, old.confidence);
        assert_eq!(grouped.online.rule, old.rule);
        assert_eq!(grouped.online.scale_to_population, old.scale_to_population);
        assert_eq!(grouped.online.parallelism, old.parallelism);
        assert_eq!(grouped.online.adaptive_chunks, old.adaptive_chunks);
    }

    #[test]
    fn conversions_carry_every_field() {
        let old = OnlineOptions {
            seed: 7,
            chunk_rows: 99,
            confidence: 0.9,
            rule: StoppingRule::rows(123),
            scale_to_population: false,
            parallelism: 3,
            adaptive_chunks: true,
        };
        let q = QueryOptions::from(&old);
        assert_eq!(q.seed, 7);
        assert_eq!(q.chunk_rows, 99);
        assert_eq!(q.confidence, 0.9);
        assert_eq!(q.rule, StoppingRule::rows(123));
        assert!(!q.scale_to_population);
        assert_eq!(q.parallelism, 3);
        assert!(q.adaptive_chunks);
        assert_eq!(q.ci_top_k, None);
        let g = GroupedOnlineOptions {
            online: old,
            ci_top_k: Some(5),
        };
        assert_eq!(QueryOptions::from(&g).ci_top_k, Some(5));
        assert_eq!(QueryOptions::from(&g).seed, 7);
    }
}
