//! # sa-online — online aggregation with stopping rules
//!
//! The paper's estimator was built to power *online aggregation*: Section
//! 6.2's lineage-carrying plans exist precisely so the SBox can be fed
//! incrementally, with unbiased estimates and confidence intervals that
//! tighten as sample tuples arrive. This crate closes that loop:
//!
//! * a **progressive query driver** ([`run_online`] / [`run_online_sql`])
//!   that pulls the sampled plan's result in chunks (via
//!   [`sa_exec::open_stream`]), maintains an incremental
//!   [`sa_core::MomentAccumulator`] — estimate, variance and CI are O(1) to
//!   read out at any time, never recomputed from scratch — and emits a
//!   [`ProgressSnapshot`] after every chunk;
//! * **stopping rules** ([`sa_plan::StoppingRule`], re-exported here):
//!   relative CI half-width ≤ ε at confidence 1−δ (the SQL
//!   `WITHIN ε PERCENT CONFIDENCE γ` clause), a row budget, a wall-clock
//!   budget, or run-to-exhaustion — first one to fire wins;
//! * a **grouped progressive driver** ([`run_online_grouped`] /
//!   [`run_online_grouped_sql`]) that routes each sampled tuple to its
//!   `GROUP BY` group's own incremental accumulator and judges the CI
//!   target **per group** — stop when every discovered group (or the top-K
//!   by estimate, [`GroupedOnlineOptions::ci_top_k`]) is tight enough,
//!   while row/time budgets stay global;
//! * **shard parallelism** ([`OnlineOptions::parallelism`], `--jobs N` in
//!   the CLI): both drivers can fan the sampled plan out over N worker
//!   threads via `sa_exec::open_stream_partitioned` — each worker owns a
//!   disjoint slice and a thread-local accumulator, and the coordinator
//!   merges per-shard deltas into the global estimate at every snapshot
//!   tick (estimates compose exactly under the accumulators' shard merge).
//!   `parallelism = 1` (the default) is the classic sequential loop,
//!   byte-identical for a fixed seed.
//!
//! For any fixed prefix of consumed tuples the incremental estimate and
//! variance equal the batch estimator's output on that prefix (up to float
//! associativity): same moments, same Theorem 1 machinery.
//!
//! ## Quick start
//!
//! ```
//! use sa_online::{run_online_sql, OnlineOptions};
//! use sa_storage::{Catalog, DataType, Field, Schema, TableBuilder, Value};
//!
//! let mut catalog = Catalog::new();
//! let schema = Schema::new(vec![Field::new("v", DataType::Float)]).unwrap();
//! let mut b = TableBuilder::new("t", schema);
//! for i in 0..20_000 { b.push_row(&[Value::Float(1.0 + (i % 5) as f64)]).unwrap(); }
//! catalog.register(b.finish().unwrap()).unwrap();
//!
//! let result = run_online_sql(
//!     "SELECT SUM(v) AS s FROM t TABLESAMPLE (50 PERCENT) \
//!      WITHIN 5 PERCENT CONFIDENCE 95",
//!     &catalog,
//!     &OnlineOptions { seed: 7, chunk_rows: 512, ..Default::default() },
//!     |snap| eprintln!("rows={} estimate={:.1}", snap.rows, snap.aggs[0].estimate),
//! ).unwrap();
//! assert!(result.snapshot.rel_half_width.unwrap() <= 0.05);
//! ```

#![warn(missing_docs)]

pub mod driver;
pub mod error;
pub mod grouped;
pub(crate) mod parallel;

pub use driver::{run_online, run_online_sql, OnlineOptions, OnlineResult, ProgressSnapshot};
pub use error::OnlineError;
pub use grouped::{
    group_snapshot, run_online_grouped, run_online_grouped_sql, GroupProgress,
    GroupedOnlineOptions, GroupedOnlineResult, GroupedProgressSnapshot,
};
// The vocabulary types callers need alongside the driver.
pub use sa_plan::{CiTarget, StopReason, StoppingRule};

/// Crate-wide result alias.
pub type Result<T, E = OnlineError> = std::result::Result<T, E>;
