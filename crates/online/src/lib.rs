//! # sa-online — online aggregation: engine, sessions, stopping rules
//!
//! The paper's estimator was built to power *online aggregation*: Section
//! 6.2's lineage-carrying plans exist precisely so the SBox can be fed
//! incrementally, with unbiased estimates and confidence intervals that
//! tighten as sample tuples arrive. This crate closes that loop behind one
//! serving-shaped API:
//!
//! * an **[`Engine`]** owns the catalog and the serving policy (default
//!   [`QueryOptions`], stable per-session seeds, admission control, shared
//!   scan hubs) and hands out [`Session`]s;
//! * `session.query(sql).within(eps, gamma).seed(s)` builds a query with
//!   one fluent surface ([`QueryBuilder`]); `GROUP BY` decides scalar vs.
//!   grouped — the result is a [`Snapshot`] variant, not a separate entry
//!   point;
//! * `.run()` / `.run_with(cb)` execute synchronously; `.online()` returns
//!   a [`QueryHandle`] with a snapshot iterator, cancellation
//!   ([`StopReason::Cancelled`]) and a final [`QueryResult`]; `.batch()`
//!   runs the paper's one-shot estimator;
//! * **stopping rules** ([`sa_plan::StoppingRule`], re-exported): relative
//!   CI half-width ≤ ε at confidence 1−δ (the SQL `WITHIN ε PERCENT
//!   CONFIDENCE γ` clause), a row budget, a wall-clock budget, or
//!   run-to-exhaustion — first one to fire wins, judged per group for
//!   grouped queries;
//! * **shared scans**: engines built with `shared_scans(true)` attach
//!   concurrent sequential queries over one table to a single circular
//!   columnar scan — N queries cost ~1 scan, and a query attaching
//!   mid-scan is just a scan-prefix *origin shift* in the Proposition-8
//!   scaling (its exhaustion readout still equals the batch estimator);
//! * **shard parallelism** ([`QueryOptions::parallelism`], `--jobs N` in
//!   the CLI): both loops can fan the sampled plan out over N worker
//!   threads via `sa_exec::open_stream_partitioned`.
//!
//! For any fixed prefix of consumed tuples the incremental estimate and
//! variance equal the batch estimator's output on that prefix (up to float
//! associativity): same moments, same Theorem 1 machinery.
//!
//! The six pre-engine free functions ([`run_online`], [`run_online_sql`],
//! [`run_online_grouped`], [`run_online_grouped_sql`], and sa-exec's
//! `approx_query` / `approx_group_query`) remain as deprecated thin
//! wrappers over the same internals.
//!
//! ## Quick start
//!
//! ```
//! use sa_online::Engine;
//! use sa_storage::{Catalog, DataType, Field, Schema, TableBuilder, Value};
//!
//! let mut catalog = Catalog::new();
//! let schema = Schema::new(vec![Field::new("v", DataType::Float)]).unwrap();
//! let mut b = TableBuilder::new("t", schema);
//! for i in 0..20_000 { b.push_row(&[Value::Float(1.0 + (i % 5) as f64)]).unwrap(); }
//! catalog.register(b.finish().unwrap()).unwrap();
//!
//! let engine = Engine::new(catalog);
//! let result = engine
//!     .session()
//!     .query("SELECT SUM(v) AS s FROM t TABLESAMPLE (50 PERCENT) \
//!             WITHIN 5 PERCENT CONFIDENCE 95")
//!     .seed(7)
//!     .chunk_rows(512)
//!     .run_with(|snap| eprintln!("rows={} half-width={:?}", snap.rows(), snap.rel_half_width()))
//!     .unwrap();
//! assert!(result.snapshot.rel_half_width().unwrap() <= 0.05);
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod driver;
pub mod engine;
pub mod error;
pub mod grouped;
pub(crate) mod parallel;

pub use api::{BatchOutput, QueryOptions, QueryResult, Snapshot};
#[allow(deprecated)]
pub use driver::{run_online, run_online_sql, OnlineOptions};
pub use driver::{OnlineResult, ProgressSnapshot};
pub use engine::{Engine, EngineBuilder, QueryBuilder, QueryHandle, Session};
pub use error::Error;
#[allow(deprecated)]
pub use error::OnlineError;
pub use grouped::{group_snapshot, GroupProgress, GroupedOnlineResult, GroupedProgressSnapshot};
#[allow(deprecated)]
pub use grouped::{run_online_grouped, run_online_grouped_sql, GroupedOnlineOptions};
// The vocabulary types callers need alongside the driver.
pub use sa_obs::{Event, EventKind, HistogramSnapshot, MetricsSnapshot, Registry};
pub use sa_plan::{CiTarget, StopReason, StoppingRule};

/// Crate-wide result alias.
pub type Result<T, E = Error> = std::result::Result<T, E>;
