//! Grouped online aggregation: per-group accumulators, per-group stopping.
//!
//! [`run_online_grouped`] is the `GROUP BY` counterpart of
//! [`crate::run_online`]. The GUS algebra needs nothing new for it: a
//! group's SUM is the SUM-like aggregate of `f_g(t) = f(t)·1{key(t) = g}` —
//! the group indicator is just another selection (Proposition 5) — so the
//! *same* top GUS from the one-time SOA rewrite analyzes every group, and
//! each group gets its own unbiased estimate and variance. The driver pulls
//! the existing [`sa_exec::ChunkStream`], routes each sampled tuple to its
//! group's incremental [`sa_core::GroupedMomentAccumulator`] slot, applies
//! the scan-progress GUS scaling (Proposition 8) once per snapshot, and
//! reads every discovered group out in O(1)-in-rows.
//!
//! ## Per-group stopping
//!
//! Accuracy is judged **per group**: a `WITHIN ε PERCENT CONFIDENCE γ`
//! target fires only when *every discovered group's* worst relative CI
//! half-width is ≤ ε — one straggler group keeps the loop running. For
//! long-tailed group counts that is often too strict (a group seen twice
//! may never tighten), so [`GroupedOnlineOptions::ci_top_k`] restricts the
//! *stopping decision* to the K groups with the largest absolute estimates;
//! tail groups are still estimated and reported honestly, they just don't
//! hold up termination. Row and time budgets stay **global**, exactly as in
//! the scalar loop.
//!
//! Groups with no sampled tuple yet are absent from snapshots (the honest
//! classical caveat of sampling-based GROUP BY); each
//! [`GroupedProgressSnapshot`] reports how many groups the latest chunk
//! discovered, so a caller can tell when discovery has plateaued.
//!
//! At exhaustion every scan-progress factor degenerates to the identity and
//! each group's readout **equals the batch grouped estimator's output** on
//! the consumed sample (up to float associativity) — pinned to 1e-9 by
//! `tests/online_grouped.rs`.

use std::hash::Hasher;
use std::time::Instant;

use sa_core::hash::{FxHashMap, FxHasher};
use sa_core::{GroupedMomentAccumulator, GusParams};
use sa_exec::{agg_results_from_report, AggResult, ChunkStream, ColumnarChunk, DimLayout};
use sa_exec::{BatchDimEval, ExecError, ProgressTree};
use sa_expr::{compile, CompiledExpr, Expr};
use sa_plan::{AggSpec, GusTree, LogicalPlan, SoaAnalysis, StopReason, StoppingRule};
use sa_sql::plan_online_grouped_sql;
use sa_storage::{Catalog, ColumnVec, Value};

use crate::api::QueryOptions;
#[allow(deprecated)]
use crate::driver::OnlineOptions;
use crate::driver::{adapt_chunk_hint, ADAPTIVE_CHUNK_CAP_FACTOR};
use crate::driver::{open_aggregate, scale_gus_tree, worst_rel_half_width, OpenedAggregate};
use crate::driver::{ProgressSnapshot, RunCtx};
use crate::error::Error;
use crate::parallel::run_worker_pool;
use crate::Result;

/// Options for the deprecated [`run_online_grouped`] free function.
#[deprecated(
    since = "0.1.0",
    note = "use `sa_online::QueryOptions` (which carries `ci_top_k` directly) with the \
            `Engine`/`Session` builder API"
)]
#[allow(deprecated)]
#[derive(Debug, Clone, Default)]
pub struct GroupedOnlineOptions {
    /// The underlying loop options (seed, chunk size, stopping rule, scan
    /// scaling) — semantics identical to the scalar driver's, except that
    /// the rule's CI target is evaluated per group.
    pub online: OnlineOptions,
    /// Judge the CI stopping target on only the `K` groups with the largest
    /// absolute (first-aggregate) estimates — the long-tail policy. Tail
    /// groups are still estimated and reported in every snapshot; they just
    /// cannot postpone termination. `None` (default): every discovered
    /// group must meet the target.
    pub ci_top_k: Option<usize>,
}

/// One group's state within a [`GroupedProgressSnapshot`].
#[derive(Debug, Clone)]
pub struct GroupProgress {
    /// The group key values, in `group_by` order.
    pub key: Vec<Value>,
    /// One result per aggregate in the `SELECT` list, judged at the
    /// snapshot's confidence level.
    pub aggs: Vec<AggResult>,
    /// Sampled result tuples routed to this group so far.
    pub sample_rows: u64,
    /// Worst (largest) relative CI half-width across this group's
    /// aggregates; `None` while some variance is not yet estimable.
    pub rel_half_width: Option<f64>,
    /// True when this group meets the stopping rule's CI target at this
    /// snapshot (always false without a CI target).
    pub converged: bool,
    /// True when this group counts toward the stopping decision (always
    /// true unless a [`GroupedOnlineOptions::ci_top_k`] policy demoted it).
    pub tracked: bool,
}

/// The state of all per-group estimates after one chunk of the progressive
/// loop.
#[derive(Debug, Clone)]
pub struct GroupedProgressSnapshot {
    /// 1-based snapshot index. In the sequential loop (`parallelism = 1`)
    /// this equals the number of pulled chunks; with workers it counts
    /// coordinator ticks, each of which may absorb several worker chunks.
    pub chunk: u64,
    /// Cumulative sampled result tuples consumed (all groups).
    pub rows: u64,
    /// Renderings of the `GROUP BY` expressions.
    pub group_exprs: Vec<String>,
    /// Every group observed so far, ordered by key (deterministic).
    pub groups: Vec<GroupProgress>,
    /// Groups first discovered by the chunk this snapshot follows.
    pub new_groups: u64,
    /// Worst relative CI half-width across the **tracked** groups — the
    /// quantity the CI stopping target is judged on. `None` while no group
    /// has been discovered or some tracked group is not yet estimable.
    pub rel_half_width: Option<f64>,
    /// Confidence level the snapshot's intervals were computed at.
    pub confidence: f64,
    /// Per-relation `(consumed, available)` scan coverage (see
    /// [`sa_exec::ChunkStream::progress`]).
    pub progress: Vec<(u64, u64)>,
    /// The GUS every group was read under: the plan GUS compacted with the
    /// scan-progress factors (shared by all groups — one compaction per
    /// snapshot, not per group).
    pub gus: sa_core::GusParams,
    /// Wall time since the loop started.
    pub elapsed: std::time::Duration,
}

/// The outcome of a grouped progressive run.
#[derive(Debug, Clone)]
pub struct GroupedOnlineResult {
    /// Why the loop stopped.
    pub reason: StopReason,
    /// The last emitted snapshot (the final per-group estimates).
    pub snapshot: GroupedProgressSnapshot,
    /// Number of snapshots emitted. Equals the chunks consumed only in the
    /// sequential loop (`parallelism = 1`); a parallel coordinator tick may
    /// absorb several worker chunks.
    pub chunks: u64,
    /// The SOA analysis shared by every group.
    pub analysis: SoaAnalysis,
}

/// Run a grouped aggregate plan progressively. `plan`'s root must be an
/// [`LogicalPlan::Aggregate`]; `group_by` are expressions over the
/// aggregate input's schema (at least one — use [`crate::run_online`] for
/// scalar queries). `on_snapshot` is called after every chunk (including
/// the final one).
#[deprecated(
    since = "0.1.0",
    note = "use `Engine::new(catalog).session().query_plan(&plan).group_by(...).run_with(...)`"
)]
#[allow(deprecated)]
pub fn run_online_grouped(
    plan: &LogicalPlan,
    group_by: &[Expr],
    catalog: &Catalog,
    opts: &GroupedOnlineOptions,
    on_snapshot: impl FnMut(&GroupedProgressSnapshot),
) -> Result<GroupedOnlineResult> {
    drive_grouped(
        plan,
        group_by,
        catalog,
        &QueryOptions::from(opts),
        &RunCtx::default(),
        on_snapshot,
    )
}

/// The canonical grouped progressive loop; everything public (the builder
/// API and the deprecated free functions) funnels into this.
pub(crate) fn drive_grouped(
    plan: &LogicalPlan,
    group_by: &[Expr],
    catalog: &Catalog,
    opts: &QueryOptions,
    ctx: &RunCtx,
    mut on_snapshot: impl FnMut(&GroupedProgressSnapshot),
) -> Result<GroupedOnlineResult> {
    if group_by.is_empty() {
        return Err(Error::Unsupported(
            "run_online_grouped requires at least one GROUP BY expression; use run_online \
             for scalar aggregates"
                .into(),
        ));
    }
    let OpenedAggregate {
        analysis,
        aggs,
        mut streams,
        layout,
    } = open_aggregate(plan, catalog, opts, ctx, group_by, "run_online_grouped")?;
    let key_kernels: Vec<CompiledExpr> = group_by
        .iter()
        .map(|e| compile(e, streams[0].schema()))
        .collect::<std::result::Result<_, _>>()
        .map_err(ExecError::Expr)?;
    let group_exprs: Vec<String> = group_by.iter().map(|e| e.to_string()).collect();
    if streams.len() > 1 {
        return drive_grouped_parallel(
            analysis,
            aggs,
            streams,
            layout,
            key_kernels,
            group_exprs,
            opts,
            ctx,
            on_snapshot,
        );
    }
    let mut stream = streams.pop().expect("open_aggregate yields >= 1 stream");
    let dim_eval = layout.compile_batch(stream.schema())?;
    let mut acc: GroupedMomentAccumulator<Vec<Value>> =
        GroupedMomentAccumulator::new(analysis.schema.n(), layout.dims());
    let rule = &opts.rule;
    let confidence = rule.confidence_or(opts.confidence);
    let start = Instant::now();
    let mut chunks = 0u64;
    let mut hint = opts.chunk_rows;
    let cap = opts.chunk_rows.saturating_mul(ADAPTIVE_CHUNK_CAP_FACTOR);
    let mut prev_rel: Option<f64> = None;
    loop {
        let chunk = stream.next_batch(hint)?;
        let exhausted = chunk.is_empty();
        let known_groups = acc.group_count();
        push_grouped_chunk(&mut acc, &key_kernels, &dim_eval, &chunk)?;
        chunks += 1;
        let new_groups = (acc.group_count() - known_groups) as u64;
        let (snapshot, reason) = grouped_tick(
            &acc,
            aggs,
            &layout,
            &analysis.gus,
            &analysis.gus_tree,
            stream.progress(),
            &stream.progress_tree(),
            opts,
            confidence,
            chunks,
            new_groups,
            &group_exprs,
            exhausted,
            ctx.cancelled(),
            false,
            &start,
        )?;
        on_snapshot(&snapshot);
        if let Some(reason) = reason {
            return Ok(GroupedOnlineResult {
                reason,
                snapshot,
                chunks,
                analysis,
            });
        }
        if opts.adaptive_chunks {
            hint = adapt_chunk_hint(hint, cap, &mut prev_rel, snapshot.rel_half_width);
        }
    }
}

/// Group-identity equality of two cells of one evaluated key column: like
/// SQL `GROUP BY` (and unlike join keys), `NULL` groups with `NULL`.
fn group_cell_eq(col: &ColumnVec, i: usize, j: usize) -> bool {
    match (col.is_valid(i), col.is_valid(j)) {
        (false, false) => true,
        (true, true) => col.cell_eq(i, col, j),
        _ => false,
    }
}

/// Route one columnar chunk into the grouped accumulator: evaluate the key
/// kernels and the aggregate dimensions once per chunk, partition the rows
/// by a 64-bit key fingerprint, and feed each partition through the
/// amortized [`GroupedMomentAccumulator::push_batch`] path — the group key
/// tuple is materialized once per (chunk × group), not once per row. Rows
/// whose key collides with a different key's fingerprint (astronomically
/// rare; detected by comparing against the partition's representative row)
/// fall back to individual pushes with their own key.
pub(crate) fn push_grouped_chunk(
    acc: &mut GroupedMomentAccumulator<Vec<Value>>,
    key_kernels: &[CompiledExpr],
    dim_eval: &BatchDimEval,
    chunk: &ColumnarChunk,
) -> Result<()> {
    if chunk.is_empty() {
        return Ok(());
    }
    let key_cols: Vec<ColumnVec> = key_kernels
        .iter()
        .map(|k| k.eval_column(&chunk.batch))
        .collect::<std::result::Result<_, _>>()
        .map_err(|e| Error::Exec(ExecError::Expr(e)))?;
    let f_cols = dim_eval.eval(&chunk.batch)?;
    let rows = chunk.rows();
    // Partition row indices by key fingerprint, in first-seen order (the
    // accumulation order is deterministic for a fixed seed and chunking).
    let mut parts: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
    let mut order: Vec<u64> = Vec::new();
    for i in 0..rows {
        let mut h = FxHasher::default();
        for c in &key_cols {
            c.hash_cell(i, &mut h);
        }
        // splitmix64 finalization: cell hashes carry their entropy in the
        // high bits (f64 bit patterns), which Fx's multiply-only mixing
        // never propagates down into the map's bucket-index bits.
        let fp = sa_core::hash::splitmix64(h.finish());
        parts
            .entry(fp)
            .or_insert_with(|| {
                order.push(fp);
                Vec::new()
            })
            .push(i as u32);
    }
    let materialize_key =
        |row: usize| -> Vec<Value> { key_cols.iter().map(|c| c.value(row)).collect() };
    let mut lin_scratch: Vec<Vec<u64>> = vec![Vec::new(); chunk.lineage.len()];
    let mut f_scratch: Vec<Vec<f64>> = vec![Vec::new(); f_cols.len()];
    for fp in order {
        let idxs = &parts[&fp];
        let rep = idxs[0] as usize;
        for s in lin_scratch.iter_mut() {
            s.clear();
        }
        for s in f_scratch.iter_mut() {
            s.clear();
        }
        let mut stragglers: Vec<u32> = Vec::new();
        for &i in idxs {
            let i = i as usize;
            // Stored-key collision check against the representative row.
            if i != rep && !key_cols.iter().all(|c| group_cell_eq(c, i, rep)) {
                stragglers.push(i as u32);
                continue;
            }
            for (s, l) in lin_scratch.iter_mut().zip(&chunk.lineage) {
                s.push(l[i]);
            }
            for (s, f) in f_scratch.iter_mut().zip(&f_cols) {
                s.push(f[i]);
            }
        }
        let lineage: Vec<&[u64]> = lin_scratch.iter().map(|s| s.as_slice()).collect();
        let f: Vec<&[f64]> = f_scratch.iter().map(|s| s.as_slice()).collect();
        acc.push_batch(materialize_key(rep), &lineage, &f)?;
        for i in stragglers {
            let i = i as usize;
            let lin: Vec<u64> = chunk.lineage.iter().map(|l| l[i]).collect();
            let fv: Vec<f64> = f_cols.iter().map(|f| f[i]).collect();
            acc.push(materialize_key(i), &lin, &fv)?;
        }
    }
    Ok(())
}

/// Build the snapshot for one tick of the grouped loop and judge the
/// stopping rule (degradation wins, then exhaustion, then cancellation,
/// then the hard deadline, then the rule) — the per-tick readout shared
/// verbatim by the sequential loop and the parallel coordinator, so the
/// two paths cannot diverge in snapshot semantics or stop precedence.
#[allow(clippy::too_many_arguments)]
fn grouped_tick(
    acc: &GroupedMomentAccumulator<Vec<Value>>,
    aggs: &[AggSpec],
    layout: &DimLayout,
    plan_gus: &GusParams,
    gus_tree: &GusTree,
    progress: Vec<(u64, u64)>,
    prog_tree: &ProgressTree,
    opts: &QueryOptions,
    confidence: f64,
    chunk: u64,
    new_groups: u64,
    group_exprs: &[String],
    exhausted: bool,
    cancelled: bool,
    degraded: bool,
    start: &Instant,
) -> Result<(GroupedProgressSnapshot, Option<StopReason>)> {
    let rule = &opts.rule;
    let gus = if opts.scale_to_population {
        scale_gus_tree(gus_tree, prog_tree)?
    } else {
        plan_gus.clone()
    };
    let (groups, rel_half_width) =
        group_progress_table(acc, aggs, layout, rule, confidence, opts.ci_top_k, &gus)?;
    let snapshot = GroupedProgressSnapshot {
        chunk,
        rows: acc.count(),
        group_exprs: group_exprs.to_vec(),
        groups,
        new_groups,
        rel_half_width,
        confidence,
        progress,
        gus,
        elapsed: start.elapsed(),
    };
    let reason = if degraded {
        // A fault was contained mid-run (a panicked worker shard): every
        // group's readout covers exactly the absorbed prefix — a valid,
        // merely smaller, sample. Degradation outranks even exhaustion.
        Some(StopReason::Degraded)
    } else if exhausted {
        Some(StopReason::Exhausted)
    } else if cancelled {
        // A cancelled loop still emits this snapshot: the accumulated
        // prefix is a valid mid-stream estimate for every group.
        Some(StopReason::Cancelled)
    } else if opts.deadline.is_some_and(|d| snapshot.elapsed >= d) {
        // The hard deadline cancels the run even when the caller's soft
        // rule never fires.
        Some(StopReason::Deadline)
    } else {
        rule.should_stop(rel_half_width, snapshot.rows, snapshot.elapsed)
    };
    Ok((snapshot, reason))
}

/// Parse, bind and progressively run a `GROUP BY` aggregate SQL query. A
/// `WITHIN ε PERCENT CONFIDENCE γ` clause in the query overrides the CI
/// target of `opts.online.rule` (row/time budgets are kept — they compose).
#[deprecated(
    since = "0.1.0",
    note = "use `Engine::new(catalog).session().query(sql).run_with(...)`"
)]
#[allow(deprecated)]
pub fn run_online_grouped_sql(
    sql: &str,
    catalog: &Catalog,
    opts: &GroupedOnlineOptions,
    on_snapshot: impl FnMut(&GroupedProgressSnapshot),
) -> Result<GroupedOnlineResult> {
    let (plan, group_by, rule) = plan_online_grouped_sql(sql, catalog)?;
    if group_by.is_empty() {
        return Err(Error::Unsupported(
            "query has no GROUP BY; use run_online_sql for scalar aggregates".into(),
        ));
    }
    let mut opts = QueryOptions::from(opts);
    if let Some(rule) = rule {
        opts.rule.ci_target = rule.ci_target;
    }
    drive_grouped(
        &plan,
        &group_by,
        catalog,
        &opts,
        &RunCtx::default(),
        on_snapshot,
    )
}

/// Read every discovered group out of `acc` under `gus`, in deterministic
/// key order, apply the top-K tracking policy, and return the table plus
/// the tracked worst relative half-width — the per-snapshot readout shared
/// by the sequential and shard-parallel grouped loops.
fn group_progress_table(
    acc: &GroupedMomentAccumulator<Vec<Value>>,
    aggs: &[AggSpec],
    layout: &DimLayout,
    rule: &StoppingRule,
    confidence: f64,
    ci_top_k: Option<usize>,
    gus: &GusParams,
) -> Result<(Vec<GroupProgress>, Option<f64>)> {
    let mut keys: Vec<Vec<Value>> = acc.keys().cloned().collect();
    keys.sort();
    let mut groups = Vec::with_capacity(keys.len());
    for key in keys {
        let slot = acc.group(&key).expect("key just listed");
        let report = slot.report(gus)?;
        let agg_results = agg_results_from_report(aggs, layout, &report, confidence);
        let rel = worst_rel_half_width(&agg_results);
        let converged = match (rule.ci_target, rel) {
            (Some(t), Some(r)) => r.is_finite() && r <= t.epsilon,
            _ => false,
        };
        groups.push(GroupProgress {
            key,
            aggs: agg_results,
            sample_rows: slot.count(),
            rel_half_width: rel,
            converged,
            tracked: true,
        });
    }
    apply_top_k_policy(&mut groups, ci_top_k);
    let rel_half_width = tracked_rel_half_width(&groups);
    Ok((groups, rel_half_width))
}

/// The shard-parallel grouped loop: one worker per partitioned stream
/// routing rows into a thread-local [`GroupedMomentAccumulator`]; the
/// coordinator absorbs the queued per-chunk deltas per tick and judges the
/// per-group rule exactly as the sequential loop does (see
/// [`crate::parallel`]).
#[allow(clippy::too_many_arguments)]
fn drive_grouped_parallel(
    analysis: SoaAnalysis,
    aggs: &[AggSpec],
    streams: Vec<ChunkStream>,
    layout: DimLayout,
    key_kernels: Vec<CompiledExpr>,
    group_exprs: Vec<String>,
    opts: &QueryOptions,
    ctx: &RunCtx,
    mut on_snapshot: impl FnMut(&GroupedProgressSnapshot),
) -> Result<GroupedOnlineResult> {
    let n = analysis.schema.n();
    let dims = layout.dims();
    let dim_eval = layout.compile_batch(streams[0].schema())?;
    let rule = &opts.rule;
    let confidence = rule.confidence_or(opts.confidence);
    let start = Instant::now();
    let mut chunks = 0u64;
    let mut known_groups = 0usize;
    let mut last: Option<GroupedProgressSnapshot> = None;
    let layout = &layout;
    let dim_eval = &dim_eval;
    let key_kernels = &key_kernels;
    let (_, reason) = run_worker_pool(
        streams,
        opts.chunk_rows,
        &ctx.pool,
        || GroupedMomentAccumulator::<Vec<Value>>::new(n, dims),
        |acc: &mut GroupedMomentAccumulator<Vec<Value>>, chunk: &ColumnarChunk| {
            push_grouped_chunk(acc, key_kernels, dim_eval, chunk)
        },
        |merged, progress, exhausted, degraded| {
            chunks += 1;
            // Discovery is judged on the merged view: a group two shards
            // found independently still counts as one discovery.
            let new_groups = merged.group_count().saturating_sub(known_groups) as u64;
            known_groups = merged.group_count();
            // Flat summed worker coverage; union plans never reach this
            // loop (partitioned opens refuse them).
            let prog_tree = ProgressTree::Leaf(progress.to_vec());
            let (snapshot, reason) = grouped_tick(
                merged,
                aggs,
                layout,
                &analysis.gus,
                &analysis.gus_tree,
                progress.to_vec(),
                &prog_tree,
                opts,
                confidence,
                chunks,
                new_groups,
                &group_exprs,
                exhausted,
                ctx.cancelled(),
                degraded,
                &start,
            )?;
            on_snapshot(&snapshot);
            last = Some(snapshot);
            Ok(reason)
        },
    )?;
    Ok(GroupedOnlineResult {
        reason,
        snapshot: last.expect("the pool judges at least one tick"),
        chunks,
        analysis,
    })
}

/// Demote all but the `k` groups with the largest absolute first-aggregate
/// estimates to untracked. Ties (and NaN estimates, ranked below every
/// finite magnitude — an inestimable group must not hold up the stop that
/// `ci_top_k` exists to unblock) break by key order, so the tracked set is
/// deterministic.
fn apply_top_k_policy(groups: &mut [GroupProgress], ci_top_k: Option<usize>) {
    let Some(k) = ci_top_k else { return };
    if groups.len() <= k {
        return;
    }
    let magnitude = |g: &GroupProgress| {
        g.aggs
            .first()
            .map(|a| a.estimate.abs())
            .filter(|m| m.is_finite())
            .unwrap_or(f64::NEG_INFINITY)
    };
    let mut order: Vec<usize> = (0..groups.len()).collect();
    order.sort_by(|&a, &b| {
        magnitude(&groups[b])
            .total_cmp(&magnitude(&groups[a]))
            .then(a.cmp(&b))
    });
    for &i in &order[k..] {
        groups[i].tracked = false;
    }
}

/// Worst relative CI half-width across the tracked groups: the quantity
/// the per-group CI stopping target is judged on. `None` while no group
/// exists or any tracked group is not yet estimable — a CI target never
/// fires on partial information.
fn tracked_rel_half_width(groups: &[GroupProgress]) -> Option<f64> {
    let mut worst = None;
    for g in groups.iter().filter(|g| g.tracked) {
        let r = g.rel_half_width?;
        worst = Some(f64::max(worst.unwrap_or(0.0), r));
    }
    worst
}

/// Collapse a grouped snapshot's tracked view into the scalar snapshot
/// shape, keyed on one group — a convenience for callers that watch a
/// single group through scalar-snapshot tooling.
pub fn group_snapshot(
    snapshot: &GroupedProgressSnapshot,
    key: &[Value],
) -> Option<ProgressSnapshot> {
    let g = snapshot.groups.iter().find(|g| g.key == key)?;
    Some(ProgressSnapshot {
        chunk: snapshot.chunk,
        rows: snapshot.rows,
        aggs: g.aggs.clone(),
        rel_half_width: g.rel_half_width,
        confidence: snapshot.confidence,
        progress: snapshot.progress.clone(),
        gus: snapshot.gus.clone(),
        elapsed: snapshot.elapsed,
    })
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use sa_exec::{f_vector, layout_dims, open_stream, ExecOptions};
    use sa_expr::col;
    use sa_expr::{bind, eval};
    use sa_plan::{AggSpec, StoppingRule};
    use sa_sampling::SamplingMethod;
    use sa_storage::{DataType, Field, Schema, TableBuilder};
    use std::time::Duration;

    /// `t(g, v)`: group "A" = 3000 rows of v=1, "B" = 1500 rows of v=2,
    /// "C" = 300 rows of v=5 — true SUMs 3000, 3000, 1500.
    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let schema = Schema::new(vec![
            Field::new("g", DataType::Str),
            Field::new("v", DataType::Float),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema);
        for i in 0..4800 {
            let (g, v) = match i % 16 {
                0..=9 => ("A", 1.0),
                10..=14 => ("B", 2.0),
                _ => ("C", 5.0),
            };
            b.push_row(&[Value::str(g), Value::Float(v)]).unwrap();
        }
        c.register(b.finish().unwrap()).unwrap();
        c
    }

    fn sum_plan(p: f64) -> LogicalPlan {
        LogicalPlan::scan("t")
            .sample(SamplingMethod::Bernoulli { p })
            .aggregate(vec![AggSpec::sum(col("v"), "s")])
    }

    fn opts(seed: u64, chunk_rows: usize, rule: StoppingRule) -> GroupedOnlineOptions {
        GroupedOnlineOptions {
            online: OnlineOptions {
                seed,
                chunk_rows,
                rule,
                ..Default::default()
            },
            ci_top_k: None,
        }
    }

    #[test]
    fn snapshots_list_groups_in_key_order_and_count_discoveries() {
        let c = catalog();
        let mut discovered = 0u64;
        let r = run_online_grouped(
            &sum_plan(0.5),
            &[col("g")],
            &c,
            &opts(3, 256, StoppingRule::exhaustive()),
            |s| {
                discovered += s.new_groups;
                let keys: Vec<&Vec<Value>> = s.groups.iter().map(|g| &g.key).collect();
                let mut sorted = keys.clone();
                sorted.sort();
                assert_eq!(keys, sorted, "groups must be key-ordered");
            },
        )
        .unwrap();
        assert_eq!(r.reason, StopReason::Exhausted);
        assert_eq!(r.snapshot.groups.len(), 3);
        assert_eq!(discovered, 3, "every group discovered exactly once");
        assert_eq!(
            r.snapshot.rows,
            r.snapshot.groups.iter().map(|g| g.sample_rows).sum::<u64>()
        );
        assert_eq!(r.snapshot.group_exprs, vec!["g".to_string()]);
    }

    #[test]
    fn exhausted_run_matches_batch_grouped_estimator() {
        let c = catalog();
        let plan = sum_plan(0.4);
        let r = run_online_grouped(
            &plan,
            &[col("g")],
            &c,
            &opts(9, 128, StoppingRule::exhaustive()),
            |_| {},
        )
        .unwrap();
        // Batch per-group moments over the SAME realized sample: collect the
        // stream and partition by key.
        let LogicalPlan::Aggregate { aggs, input } = &plan else {
            unreachable!()
        };
        let mut stream = open_stream(
            input,
            &c,
            &ExecOptions {
                seed: 9,
                ..Default::default()
            },
        )
        .unwrap();
        let layout = layout_dims(aggs, stream.schema()).unwrap();
        let key_expr = bind(&col("g"), stream.schema()).unwrap();
        let mut batch: std::collections::BTreeMap<Vec<Value>, sa_core::GroupedMoments> =
            Default::default();
        loop {
            let chunk = stream.next_chunk(4096).unwrap();
            if chunk.is_empty() {
                break;
            }
            for row in &chunk {
                let key = vec![eval(&key_expr, &row.values).unwrap()];
                batch
                    .entry(key)
                    .or_insert_with(|| sa_core::GroupedMoments::new(1, layout.dims()))
                    .push(&row.lineage, &f_vector(&layout, row).unwrap())
                    .unwrap();
            }
        }
        assert_eq!(batch.len(), r.snapshot.groups.len());
        for g in &r.snapshot.groups {
            let moments = batch.remove(&g.key).expect("group in both").finish();
            let report = sa_core::estimate_from_sample_moments(&r.analysis.gus, &moments).unwrap();
            let (eo, eb) = (g.aggs[0].estimate, report.estimate[0]);
            assert!((eo - eb).abs() < 1e-9 * (1.0 + eb.abs()), "{eo} vs {eb}");
            let (vo, vb) = (g.aggs[0].variance.unwrap(), report.variance(0).unwrap());
            assert!((vo - vb).abs() < 1e-9 * (1.0 + vb.abs()), "{vo} vs {vb}");
        }
    }

    #[test]
    fn ci_rule_waits_for_every_group() {
        // The rare group C converges last: when the loop stops, ALL groups
        // must meet the target, and the stop must still beat exhaustion.
        let c = catalog();
        let r = run_online_grouped(
            &sum_plan(0.9),
            &[col("g")],
            &c,
            &opts(4, 64, StoppingRule::ci(0.2, 0.95)),
            |_| {},
        )
        .unwrap();
        assert_eq!(r.reason, StopReason::CiConverged);
        assert!(r.snapshot.rel_half_width.unwrap() <= 0.2);
        for g in &r.snapshot.groups {
            assert!(g.converged, "group {:?} had not converged", g.key);
            assert!(g.tracked);
        }
        let (consumed, available) = r.snapshot.progress[0];
        assert!(consumed < available, "stopped before exhaustion");
    }

    #[test]
    fn top_k_policy_stops_on_heavy_groups_only() {
        // With a tight-ish target the tiny group C is the straggler; track
        // only the top-2 estimates (A and B) and the loop stops earlier.
        let c = catalog();
        let all = run_online_grouped(
            &sum_plan(0.9),
            &[col("g")],
            &c,
            &opts(4, 64, StoppingRule::ci(0.12, 0.95)),
            |_| {},
        )
        .unwrap();
        let top2 = run_online_grouped(
            &sum_plan(0.9),
            &[col("g")],
            &c,
            &GroupedOnlineOptions {
                ci_top_k: Some(2),
                ..opts(4, 64, StoppingRule::ci(0.12, 0.95))
            },
            |_| {},
        )
        .unwrap();
        assert_eq!(top2.reason, StopReason::CiConverged);
        assert!(
            top2.snapshot.rows < all.snapshot.rows,
            "top-2 stop ({}) should beat all-groups stop ({})",
            top2.snapshot.rows,
            all.snapshot.rows
        );
        // The tail group is still reported, just untracked.
        let c_group = top2
            .snapshot
            .groups
            .iter()
            .find(|g| g.key == vec![Value::str("C")])
            .expect("tail group still reported");
        assert!(!c_group.tracked);
        assert!(c_group.aggs[0].estimate > 0.0);
        let tracked = top2.snapshot.groups.iter().filter(|g| g.tracked).count();
        assert_eq!(tracked, 2);
    }

    #[test]
    fn top_k_ranks_inestimable_groups_last() {
        // A NaN estimate (e.g. an AVG whose delta-method ratio failed) must
        // rank BELOW every finite magnitude: an inestimable group would pin
        // rel_half_width to None forever and block the very stop ci_top_k
        // exists to unblock.
        let mk = |key: &str, estimate: f64| GroupProgress {
            key: vec![Value::str(key)],
            aggs: vec![AggResult {
                name: "s".into(),
                func: sa_plan::AggFunc::Sum,
                estimate,
                variance: None,
                ci_normal: None,
                ci_chebyshev: None,
                quantile_bound: None,
            }],
            sample_rows: 1,
            rel_half_width: None,
            converged: false,
            tracked: true,
        };
        let mut groups = vec![mk("a", f64::NAN), mk("b", 10.0), mk("c", -20.0)];
        apply_top_k_policy(&mut groups, Some(2));
        assert!(!groups[0].tracked, "NaN group must be demoted");
        assert!(groups[1].tracked && groups[2].tracked);
    }

    #[test]
    fn global_budgets_still_fire() {
        let c = catalog();
        let r = run_online_grouped(
            &sum_plan(0.9),
            &[col("g")],
            &c,
            &opts(1, 100, StoppingRule::rows(500)),
            |_| {},
        )
        .unwrap();
        assert_eq!(r.reason, StopReason::RowBudget);
        assert!(r.snapshot.rows >= 500 && r.snapshot.rows < 2000);
        let r = run_online_grouped(
            &sum_plan(0.9),
            &[col("g")],
            &c,
            &opts(1, 10, StoppingRule::time(Duration::ZERO)),
            |_| {},
        )
        .unwrap();
        assert_eq!(r.reason, StopReason::TimeBudget);
        assert_eq!(r.chunks, 1);
    }

    #[test]
    fn grouped_sql_lowers_the_rule_per_group() {
        let c = catalog();
        let mut snaps = 0u64;
        let r = run_online_grouped_sql(
            "SELECT g, SUM(v) AS s FROM t TABLESAMPLE (90 PERCENT) GROUP BY g \
             WITHIN 20 PERCENT CONFIDENCE 95",
            &c,
            &opts(4, 128, StoppingRule::exhaustive()),
            |_| snaps += 1,
        )
        .unwrap();
        assert_eq!(r.reason, StopReason::CiConverged);
        assert_eq!(snaps, r.chunks);
        assert!((r.snapshot.confidence - 0.95).abs() < 1e-12);
        assert_eq!(r.snapshot.groups.len(), 3);
    }

    #[test]
    fn scalar_queries_and_empty_keys_redirected() {
        let c = catalog();
        let err = run_online_grouped_sql(
            "SELECT SUM(v) AS s FROM t TABLESAMPLE (50 PERCENT)",
            &c,
            &GroupedOnlineOptions::default(),
            |_| {},
        )
        .unwrap_err();
        assert!(err.to_string().contains("run_online_sql"), "{err}");
        let err = run_online_grouped(
            &sum_plan(0.5),
            &[],
            &c,
            &GroupedOnlineOptions::default(),
            |_| {},
        )
        .unwrap_err();
        assert!(err.to_string().contains("GROUP BY"), "{err}");
    }

    #[test]
    fn zero_chunk_rows_rejected() {
        let c = catalog();
        let bad = GroupedOnlineOptions {
            online: OnlineOptions {
                chunk_rows: 0,
                ..Default::default()
            },
            ci_top_k: None,
        };
        let err = run_online_grouped(&sum_plan(0.5), &[col("g")], &c, &bad, |_| {}).unwrap_err();
        assert!(matches!(err, Error::InvalidOptions(_)), "{err}");
        assert!(err.to_string().contains("chunk_rows"), "{err}");
    }

    #[test]
    fn non_aggregate_root_rejected() {
        let c = catalog();
        let err = run_online_grouped(
            &LogicalPlan::scan("t"),
            &[col("g")],
            &c,
            &GroupedOnlineOptions::default(),
            |_| {},
        )
        .unwrap_err();
        assert!(matches!(err, Error::Unsupported(_)));
    }

    #[test]
    fn grouped_union_scaling_matches_batch_at_exhaustion() {
        // Per-branch prefix composition works per group too: the union plan
        // runs with population scaling on, and at exhaustion every group's
        // readout equals the batch grouped estimator on the same realized
        // union sample.
        let c = catalog();
        let plan = LogicalPlan::scan("t")
            .sample(SamplingMethod::Bernoulli { p: 0.4 })
            .union_samples(LogicalPlan::scan("t").sample(SamplingMethod::Bernoulli { p: 0.4 }))
            .aggregate(vec![AggSpec::sum(col("v"), "s")]);
        let r = run_online_grouped(
            &plan,
            &[col("g")],
            &c,
            &opts(9, 128, StoppingRule::exhaustive()),
            |_| {},
        )
        .unwrap();
        assert_eq!(r.reason, StopReason::Exhausted);
        let LogicalPlan::Aggregate { aggs, input } = &plan else {
            unreachable!()
        };
        let exec_opts = ExecOptions {
            seed: 9,
            ..Default::default()
        };
        let mut stream = open_stream(input, &c, &exec_opts).unwrap();
        let layout = layout_dims(aggs, stream.schema()).unwrap();
        let key_expr = bind(&col("g"), stream.schema()).unwrap();
        let mut batch: std::collections::BTreeMap<Vec<Value>, sa_core::GroupedMoments> =
            Default::default();
        loop {
            let chunk = stream.next_chunk(4096).unwrap();
            if chunk.is_empty() {
                break;
            }
            for row in &chunk {
                let key = vec![eval(&key_expr, &row.values).unwrap()];
                batch
                    .entry(key)
                    .or_insert_with(|| sa_core::GroupedMoments::new(1, layout.dims()))
                    .push(&row.lineage, &f_vector(&layout, row).unwrap())
                    .unwrap();
            }
        }
        assert_eq!(batch.len(), r.snapshot.groups.len());
        for g in &r.snapshot.groups {
            let moments = batch.remove(&g.key).expect("group in both").finish();
            let report = sa_core::estimate_from_sample_moments(&r.analysis.gus, &moments).unwrap();
            let (eo, eb) = (g.aggs[0].estimate, report.estimate[0]);
            assert!((eo - eb).abs() < 1e-9 * (1.0 + eb.abs()), "{eo} vs {eb}");
            let (vo, vb) = (g.aggs[0].variance.unwrap(), report.variance(0).unwrap());
            assert!((vo - vb).abs() < 1e-9 * (1.0 + vb.abs()), "{vo} vs {vb}");
        }
    }

    #[test]
    fn empty_table_emits_one_groupless_snapshot() {
        let mut c = Catalog::new();
        let schema = Schema::new(vec![
            Field::new("g", DataType::Str),
            Field::new("v", DataType::Float),
        ])
        .unwrap();
        c.register(TableBuilder::new("t", schema).finish().unwrap())
            .unwrap();
        let r = run_online_grouped(
            &sum_plan(0.5),
            &[col("g")],
            &c,
            &GroupedOnlineOptions::default(),
            |_| {},
        )
        .unwrap();
        assert_eq!(r.reason, StopReason::Exhausted);
        assert_eq!(r.chunks, 1);
        assert!(r.snapshot.groups.is_empty());
        assert_eq!(r.snapshot.rel_half_width, None);
        // A CI rule over an empty stream must run to exhaustion, not fire.
        let r = run_online_grouped(
            &sum_plan(0.5),
            &[col("g")],
            &c,
            &opts(0, 64, StoppingRule::ci(0.05, 0.95)),
            |_| {},
        )
        .unwrap();
        assert_eq!(r.reason, StopReason::Exhausted);
    }

    #[test]
    fn group_snapshot_projects_one_group() {
        let c = catalog();
        let r = run_online_grouped(
            &sum_plan(0.5),
            &[col("g")],
            &c,
            &opts(3, 512, StoppingRule::exhaustive()),
            |_| {},
        )
        .unwrap();
        let a = group_snapshot(&r.snapshot, &[Value::str("A")]).unwrap();
        assert_eq!(a.chunk, r.snapshot.chunk);
        assert!((a.aggs[0].estimate - 3000.0).abs() < 500.0);
        assert!(group_snapshot(&r.snapshot, &[Value::str("nope")]).is_none());
    }

    #[test]
    fn multiple_aggregates_and_multi_key_groups() {
        let c = catalog();
        let plan = LogicalPlan::scan("t")
            .sample(SamplingMethod::Bernoulli { p: 0.6 })
            .aggregate(vec![
                AggSpec::sum(col("v"), "s"),
                AggSpec::count_star("n"),
                AggSpec::avg(col("v"), "a"),
            ]);
        let r = run_online_grouped(
            &plan,
            &[col("g"), col("v")],
            &c,
            &opts(7, 256, StoppingRule::exhaustive()),
            |_| {},
        )
        .unwrap();
        // (g, v) is functionally g here, so still 3 groups, 2-part keys.
        assert_eq!(r.snapshot.groups.len(), 3);
        for g in &r.snapshot.groups {
            assert_eq!(g.key.len(), 2);
            assert_eq!(g.aggs.len(), 3);
            // AVG of the constant v within a group is exact.
            let v = g.key[1].as_f64().unwrap();
            assert!((g.aggs[2].estimate - v).abs() < 1e-9);
        }
    }
}
