//! The serving layer: an owned [`Engine`] hands out [`Session`]s; a
//! session builds queries with one fluent surface and runs them online
//! (streaming snapshots through a [`QueryHandle`]), synchronously, or as a
//! one-shot batch.
//!
//! ```text
//! Engine (catalog, defaults, admission, shared scans)
//!   └─ session() ─▶ Session (stable per-session seed)
//!        └─ query(sql) / query_plan(&plan) ─▶ QueryBuilder
//!             .within(0.05, 0.95).seed(7)...
//!             ├─ .run() / .run_with(cb) ─▶ QueryResult   (synchronous)
//!             ├─ .online()              ─▶ QueryHandle   (spawned thread:
//!             │                            snapshot iterator + cancel + wait)
//!             └─ .batch()               ─▶ BatchOutput   (one-shot estimate)
//! ```
//!
//! ## Seeds
//!
//! Each session gets a stable seed derived from the engine's default seed
//! and the session's ordinal (`splitmix64(default_seed + ordinal)`), so the
//! i-th session of an engine always sees the same sample realization —
//! estimates stay *comparable across sessions and restarts* in the spirit
//! of coordinated sampling (keep the randomness fixed, vary the query).
//! `.seed(s)` on the builder overrides it per query.
//!
//! ## Admission control
//!
//! [`EngineBuilder::max_concurrent`] bounds the queries in flight; past the
//! bound, terminals fail fast with [`Error::Busy`] instead of queueing —
//! the serving front-end decides whether to retry or shed load.
//!
//! ## Shared scans
//!
//! With [`EngineBuilder::shared_scans`] enabled, concurrent sequential
//! queries over the same table attach to one circular columnar scan
//! ([`SharedTableScan`]): N queries cost ~1 table scan. A query attaching
//! mid-scan starts at the hub's current head — a scan-prefix *origin
//! shift* that the Proposition-8 WOR(consumed, total) scaling is invariant
//! to, so estimates and intervals are exactly as if the query had its own
//! scan (see `docs/estimation-notes.md`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use sa_core::hash::splitmix64;
use sa_exec::shared::{DEFAULT_BUS_ROWS, DEFAULT_MAX_LAG_ROWS};
use sa_exec::{
    shared_scan_needs, shared_scan_table, ApproxOptions, ScanObs, SharedScanStats, SharedTableScan,
};
use sa_expr::Expr;
use sa_obs::{Counter, EventKind, Gauge, Histogram, MetricsSnapshot, Registry};
use sa_plan::{LogicalPlan, StopReason};
use sa_sql::plan_online_grouped_sql;
use sa_storage::Catalog;

use crate::api::{BatchOutput, QueryOptions, QueryResult, Snapshot};
use crate::driver::{drive_scalar, RunCtx};
use crate::error::Error;
use crate::grouped::drive_grouped;
use crate::parallel::PoolObs;
use crate::Result;

/// Everything sessions share, behind one allocation.
struct EngineInner {
    catalog: Catalog,
    defaults: QueryOptions,
    max_concurrent: usize,
    shared_scans: bool,
    bus_rows: usize,
    max_lag_rows: u64,
    /// Shared circular scan hubs, per table, created on first use. A table
    /// usually has one hub; projection pushdown can add column-pruned hubs
    /// beside the full one (a query reuses any hub whose column set covers
    /// its needs — see [`Engine::covering_hub`]).
    scans: Mutex<HashMap<String, Vec<Arc<SharedTableScan>>>>,
    /// Queries in flight (admission control).
    active: AtomicUsize,
    /// Session ordinal counter (seed derivation).
    sessions: AtomicU64,
    /// Query ordinal counter (event correlation ids).
    queries: AtomicU64,
    /// Metrics and event handles ([`EngineObs::disabled`] unless the
    /// engine was built with [`EngineBuilder::metrics`]).
    obs: EngineObs,
}

/// The engine's observability handles, pre-registered at build time so
/// every series exists from the first scrape (a counter that has never
/// fired still renders as `0`). Disabled handles (the default) turn every
/// update into one untaken branch — see the `sa-obs` crate docs for the
/// hot-path contract.
struct EngineObs {
    registry: Registry,
    sessions_opened: Counter,
    queries_started: Counter,
    /// Indexed by [`reason_ix`]: one labeled counter per stop reason.
    queries_finished: [Counter; 7],
    queries_rejected: Counter,
    query_errors: Counter,
    batch_queries: Counter,
    snapshots: Counter,
    rows_consumed: Counter,
    active_queries: Gauge,
    query_duration_us: Histogram,
    first_snapshot_us: Histogram,
    stop_scan_permille: Histogram,
    /// Handles the worker pool updates (cloned into each query's
    /// [`RunCtx`]).
    pool: PoolObs,
    /// Handles the scan layer updates (columns gathered, pages skipped by
    /// pushed-down predicates) — cloned into each query's [`RunCtx`].
    scan: ScanObs,
}

/// The fixed index of each stop reason in `queries_finished` (and the
/// `reason=` label value it was registered under).
fn reason_ix(reason: StopReason) -> usize {
    match reason {
        StopReason::CiConverged => 0,
        StopReason::RowBudget => 1,
        StopReason::TimeBudget => 2,
        StopReason::Exhausted => 3,
        StopReason::Cancelled => 4,
        StopReason::Deadline => 5,
        StopReason::Degraded => 6,
    }
}

/// [`StopReason`]'s display form as a static string (journal events store
/// no allocations).
fn reason_str(reason: StopReason) -> &'static str {
    match reason {
        StopReason::CiConverged => "ci-converged",
        StopReason::RowBudget => "row-budget",
        StopReason::TimeBudget => "time-budget",
        StopReason::Exhausted => "exhausted",
        StopReason::Cancelled => "cancelled",
        StopReason::Deadline => "deadline",
        StopReason::Degraded => "degraded",
    }
}

impl EngineObs {
    fn new(registry: Registry) -> EngineObs {
        // Shared-scan counters are owned by the hubs (`with_observer`), but
        // registering the names here makes the series visible before the
        // first hub exists.
        registry.counter("sa_shared_scan_rows_gathered_total");
        registry.counter("sa_shared_scan_rows_served_total");
        registry.counter("sa_shared_scan_attach_total");
        registry.counter("sa_shared_scan_detach_total");
        registry.counter("sa_shared_scan_lag_stalls_total");
        EngineObs {
            sessions_opened: registry.counter("sa_sessions_opened_total"),
            queries_started: registry.counter("sa_queries_started_total"),
            queries_finished: [
                registry.counter("sa_queries_finished_total{reason=\"ci-converged\"}"),
                registry.counter("sa_queries_finished_total{reason=\"row-budget\"}"),
                registry.counter("sa_queries_finished_total{reason=\"time-budget\"}"),
                registry.counter("sa_queries_finished_total{reason=\"exhausted\"}"),
                registry.counter("sa_queries_finished_total{reason=\"cancelled\"}"),
                registry.counter("sa_queries_finished_total{reason=\"deadline\"}"),
                registry.counter("sa_queries_finished_total{reason=\"degraded\"}"),
            ],
            queries_rejected: registry.counter("sa_queries_rejected_total"),
            query_errors: registry.counter("sa_query_errors_total"),
            batch_queries: registry.counter("sa_batch_queries_total"),
            snapshots: registry.counter("sa_snapshots_emitted_total"),
            rows_consumed: registry.counter("sa_rows_consumed_total"),
            active_queries: registry.gauge("sa_active_queries"),
            query_duration_us: registry.histogram("sa_query_duration_us"),
            first_snapshot_us: registry.histogram("sa_time_to_first_snapshot_us"),
            stop_scan_permille: registry.histogram("sa_stop_scan_permille"),
            pool: PoolObs {
                chunks: registry.counter("sa_worker_chunks_total"),
                rows: registry.counter("sa_worker_rows_total"),
                stalls: registry.counter("sa_worker_backpressure_stalls_total"),
                merge_us: registry.histogram("sa_coordinator_merge_us"),
                panics: registry.counter("sa_worker_panics_contained_total"),
            },
            scan: ScanObs::new(&registry),
            registry,
        }
    }

    fn disabled() -> EngineObs {
        EngineObs {
            registry: Registry::disabled(),
            sessions_opened: Counter::default(),
            queries_started: Counter::default(),
            queries_finished: Default::default(),
            queries_rejected: Counter::default(),
            query_errors: Counter::default(),
            batch_queries: Counter::default(),
            snapshots: Counter::default(),
            rows_consumed: Counter::default(),
            active_queries: Gauge::default(),
            query_duration_us: Histogram::default(),
            first_snapshot_us: Histogram::default(),
            stop_scan_permille: Histogram::default(),
            pool: PoolObs::default(),
            scan: ScanObs::default(),
        }
    }
}

/// The owned query engine: a catalog plus the serving policy (default
/// options, per-session seeds, admission control, shared scan hubs).
/// Cheap to clone — clones share the same engine state.
///
/// ```
/// use sa_online::Engine;
/// use sa_storage::{Catalog, DataType, Field, Schema, TableBuilder, Value};
///
/// let mut catalog = Catalog::new();
/// let schema = Schema::new(vec![Field::new("v", DataType::Float)]).unwrap();
/// let mut b = TableBuilder::new("t", schema);
/// for i in 0..20_000 { b.push_row(&[Value::Float(1.0 + (i % 5) as f64)]).unwrap(); }
/// catalog.register(b.finish().unwrap()).unwrap();
///
/// let engine = Engine::new(catalog);
/// let session = engine.session();
/// let result = session
///     .query("SELECT SUM(v) AS s FROM t TABLESAMPLE (50 PERCENT)")
///     .within(0.05, 0.95)
///     .seed(7)
///     .run()
///     .unwrap();
/// let agg = &result.snapshot.as_scalar().unwrap().aggs[0];
/// assert!((agg.estimate - 60_000.0).abs() < 6_000.0);
/// ```
#[derive(Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

/// Configures and builds an [`Engine`].
pub struct EngineBuilder {
    catalog: Catalog,
    defaults: QueryOptions,
    max_concurrent: usize,
    shared_scans: bool,
    bus_rows: usize,
    max_lag_rows: u64,
    metrics: bool,
}

impl EngineBuilder {
    /// Default [`QueryOptions`] every query starts from (the builder's
    /// setters override per query; the seed is further specialized per
    /// session).
    pub fn defaults(mut self, defaults: QueryOptions) -> EngineBuilder {
        self.defaults = defaults;
        self
    }

    /// Bound the queries in flight: past the bound, query terminals fail
    /// fast with [`Error::Busy`]. Default: unbounded.
    pub fn max_concurrent(mut self, max: usize) -> EngineBuilder {
        self.max_concurrent = max;
        self
    }

    /// Attach concurrent sequential queries over one table to a shared
    /// circular scan (N queries ≈ 1 table scan). Default off: a private
    /// scan per query keeps realizations independent of engine history.
    pub fn shared_scans(mut self, on: bool) -> EngineBuilder {
        self.shared_scans = on;
        self
    }

    /// Tune the shared scan hubs: rows per bus chunk and the maximum lag
    /// (in rows) the fastest reader may build over the slowest before it
    /// blocks.
    pub fn scan_window(mut self, bus_rows: usize, max_lag_rows: u64) -> EngineBuilder {
        self.bus_rows = bus_rows;
        self.max_lag_rows = max_lag_rows;
        self
    }

    /// Record metrics and structured events into an [`sa_obs::Registry`]
    /// owned by the engine — read them back via [`Engine::metrics`],
    /// [`Engine::registry`] or [`Engine::render_prometheus`]. Default off:
    /// every would-be metric update is then a single untaken branch, and
    /// instrumentation can never perturb the realized sample either way
    /// (pinned by `tests/observability.rs`).
    pub fn metrics(mut self, on: bool) -> EngineBuilder {
        self.metrics = on;
        self
    }

    /// Build the engine.
    pub fn build(self) -> Engine {
        Engine {
            inner: Arc::new(EngineInner {
                catalog: self.catalog,
                defaults: self.defaults,
                max_concurrent: self.max_concurrent,
                shared_scans: self.shared_scans,
                bus_rows: self.bus_rows,
                max_lag_rows: self.max_lag_rows,
                scans: Mutex::new(HashMap::new()),
                active: AtomicUsize::new(0),
                sessions: AtomicU64::new(0),
                queries: AtomicU64::new(0),
                obs: if self.metrics {
                    EngineObs::new(Registry::new())
                } else {
                    EngineObs::disabled()
                },
            }),
        }
    }
}

impl Engine {
    /// An engine over `catalog` with default policy (no concurrency bound,
    /// private scans, [`QueryOptions::default`] defaults).
    pub fn new(catalog: Catalog) -> Engine {
        Engine::builder(catalog).build()
    }

    /// Start configuring an engine over `catalog`.
    pub fn builder(catalog: Catalog) -> EngineBuilder {
        EngineBuilder {
            catalog,
            defaults: QueryOptions::default(),
            max_concurrent: usize::MAX,
            shared_scans: false,
            bus_rows: DEFAULT_BUS_ROWS,
            max_lag_rows: DEFAULT_MAX_LAG_ROWS,
            metrics: false,
        }
    }

    /// The engine's catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.inner.catalog
    }

    /// Open a session: a stable identity whose seed is derived from the
    /// engine's default seed and the session ordinal, so the i-th session
    /// always samples the same realization (override per query with
    /// [`QueryBuilder::seed`]).
    pub fn session(&self) -> Session {
        let ordinal = self.inner.sessions.fetch_add(1, Ordering::Relaxed) + 1;
        self.inner.obs.sessions_opened.inc();
        Session {
            engine: self.clone(),
            id: ordinal,
            seed: splitmix64(self.inner.defaults.seed.wrapping_add(ordinal)),
        }
    }

    /// Queries currently in flight (admitted, not yet finished).
    pub fn active_queries(&self) -> usize {
        self.inner.active.load(Ordering::Relaxed)
    }

    /// The engine's metrics registry — disabled (every read empty, every
    /// write a no-op) unless the engine was built with
    /// [`EngineBuilder::metrics`]. Hand it to custom components (extra
    /// [`SharedTableScan::with_observer`] hubs, a server front-end) so
    /// their series land in the same scrape.
    pub fn registry(&self) -> &Registry {
        &self.inner.obs.registry
    }

    /// A point-in-time snapshot of every engine metric (empty when metrics
    /// are off).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.obs.registry.snapshot()
    }

    /// Render the engine's metrics in Prometheus text exposition format,
    /// with live per-table shared-scan gauges appended (attached cursors
    /// and hub head position per hub). Empty when metrics are off.
    pub fn render_prometheus(&self) -> String {
        if !self.inner.obs.registry.enabled() {
            return String::new();
        }
        let mut out = self.inner.obs.registry.render_prometheus();
        let scans = self.inner.scans.lock().unwrap_or_else(|e| e.into_inner());
        let mut tables: Vec<&String> = scans.keys().collect();
        tables.sort();
        // One series per hub: the full-column hub keeps the bare
        // `{table=...}` labels; pruned hubs add their column set so the
        // series stay distinct.
        let labels = |t: &str, hub: &SharedTableScan| match hub.columns() {
            None => format!("{{table=\"{t}\"}}"),
            Some(cols) => {
                let cols: Vec<String> = cols.iter().map(|c| c.to_string()).collect();
                format!("{{table=\"{t}\",cols=\"{}\"}}", cols.join(","))
            }
        };
        if !tables.is_empty() {
            out.push_str("# TYPE sa_shared_scan_attached gauge\n");
            for t in &tables {
                for hub in &scans[t.as_str()] {
                    out.push_str(&format!(
                        "sa_shared_scan_attached{} {}\n",
                        labels(t, hub),
                        hub.stats().attached
                    ));
                }
            }
            out.push_str("# TYPE sa_shared_scan_head gauge\n");
            for t in &tables {
                for hub in &scans[t.as_str()] {
                    out.push_str(&format!(
                        "sa_shared_scan_head{} {}\n",
                        labels(t, hub),
                        hub.stats().head
                    ));
                }
            }
        }
        drop(scans);
        // Process-global resilience counters: checksum verification and
        // retry totals from the storage layer (which has no engine handle)
        // and the deterministic fault-injection registry. A zero reads as
        // "no faults seen"; the fault-site series only appear while a
        // `--fault` spec is installed.
        out.push_str("# TYPE sa_storage_read_retries_total counter\n");
        out.push_str(&format!(
            "sa_storage_read_retries_total {}\n",
            sa_storage::retries_total()
        ));
        out.push_str("# TYPE sa_storage_corrupt_pages_total counter\n");
        out.push_str(&format!(
            "sa_storage_corrupt_pages_total {}\n",
            sa_storage::corrupt_pages_total()
        ));
        let sites = sa_fault::snapshot();
        if !sites.is_empty() {
            out.push_str("# TYPE sa_fault_site_evals_total counter\n");
            for (site, evals, _) in &sites {
                out.push_str(&format!(
                    "sa_fault_site_evals_total{{site=\"{site}\"}} {evals}\n"
                ));
            }
            out.push_str("# TYPE sa_fault_site_fired_total counter\n");
            for (site, _, fired) in &sites {
                out.push_str(&format!(
                    "sa_fault_site_fired_total{{site=\"{site}\"}} {fired}\n"
                ));
            }
        }
        out
    }

    /// The shared scan hub for `table`, created on first use — public so
    /// tests and tools can warm a hub to a given head position or hold a
    /// gate cursor on it. Works regardless of the `shared_scans` toggle
    /// (which only controls whether *queries* attach automatically).
    pub fn shared_scan(&self, table: &str) -> Result<Arc<SharedTableScan>> {
        self.covering_hub(table, None)
    }

    /// A hub over `table` whose column set covers `needed` (`None` = every
    /// column), reusing any existing covering hub — the full hub serves
    /// every pruned query that arrives after it — and creating a pruned
    /// one keyed to exactly `needed` otherwise.
    fn covering_hub(
        &self,
        table: &str,
        needed: Option<Vec<usize>>,
    ) -> Result<Arc<SharedTableScan>> {
        let mut scans = self.inner.scans.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(hubs) = scans.get(table) {
            if let Some(hub) = hubs.iter().find(|h| h.covers(needed.as_deref())) {
                return Ok(Arc::clone(hub));
            }
        }
        let t = self.inner.catalog.get(table)?;
        let mut hub = SharedTableScan::new(t, self.inner.bus_rows)
            .with_max_lag_rows(self.inner.max_lag_rows)
            .with_observer(&self.inner.obs.registry);
        if let Some(cols) = needed {
            hub = hub.with_columns(cols);
        }
        let hub = Arc::new(hub);
        scans
            .entry(table.to_string())
            .or_default()
            .push(Arc::clone(&hub));
        Ok(hub)
    }

    /// Live stats of `table`'s shared scan hub, if one exists (the
    /// full-column hub when both full and pruned hubs are live).
    pub fn scan_stats(&self, table: &str) -> Option<SharedScanStats> {
        let scans = self.inner.scans.lock().unwrap_or_else(|e| e.into_inner());
        let hubs = scans.get(table)?;
        hubs.iter()
            .find(|h| h.columns().is_none())
            .or_else(|| hubs.first())
            .map(|h| h.stats())
    }

    /// Admit one query for `session` or fail fast with [`Error::Busy`]
    /// (counted as an admission rejection).
    fn admit(&self, session: u64) -> Result<AdmitGuard> {
        let max = self.inner.max_concurrent;
        let mut cur = self.inner.active.load(Ordering::Relaxed);
        loop {
            if cur >= max {
                self.inner.obs.queries_rejected.inc();
                self.inner.obs.registry.record(EventKind::SessionRejected {
                    session,
                    active: cur as u64,
                });
                return Err(Error::Busy { active: cur, max });
            }
            match self.inner.active.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.inner.obs.active_queries.add(1);
                    return Ok(AdmitGuard(self.clone()));
                }
                Err(now) => cur = now,
            }
        }
    }

    /// The shared hub the query should attach to, if shared scans are on
    /// and the plan is shaped for it (a sequential Bernoulli/filter/project
    /// pipeline over one base table).
    fn shared_hub(
        &self,
        plan: &LogicalPlan,
        group_by: &[Expr],
        opts: &QueryOptions,
    ) -> Result<Option<Arc<SharedTableScan>>> {
        if !self.inner.shared_scans || opts.parallelism != 1 || opts.shuffle_scan {
            // A shuffled scan's gather order is per-query state; it cannot
            // ride the hub's shared cursor, so it opens a private stream.
            return Ok(None);
        }
        let LogicalPlan::Aggregate { input, .. } = plan else {
            return Ok(None);
        };
        match shared_scan_table(input) {
            Some(table) => {
                let table = table.to_string();
                // Mirror the driver's pruning (full plan + GROUP BY keys)
                // so the hub's column set covers what the cursor will ask
                // for — the swap-in attach can then never be rejected.
                let needed = if opts.disable_pushdown {
                    None
                } else {
                    let map = sa_plan::ScanColumnMap::analyze_with(plan, group_by);
                    shared_scan_needs(input, &self.inner.catalog, &map)?
                };
                Ok(Some(self.covering_hub(&table, needed)?))
            }
            None => Ok(None),
        }
    }
}

/// Decrements the in-flight counter when a query finishes (however it
/// finishes).
struct AdmitGuard(Engine);

impl Drop for AdmitGuard {
    fn drop(&mut self) {
        self.0.inner.active.fetch_sub(1, Ordering::AcqRel);
        self.0.inner.obs.active_queries.add(-1);
    }
}

/// A client identity handed out by [`Engine::session`]: carries the
/// engine handle and a stable per-session seed. Cheap to clone.
#[derive(Clone)]
pub struct Session {
    engine: Engine,
    id: u64,
    seed: u64,
}

impl Session {
    /// The session's ordinal (1-based, in `Engine::session` call order).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The session's derived seed (the default for its queries).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The engine this session belongs to.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Build a query from SQL. `GROUP BY` decides scalar vs. grouped; a
    /// `WITHIN ε PERCENT CONFIDENCE γ` clause becomes the CI stopping
    /// target (overriding one set on the builder).
    pub fn query(&self, sql: &str) -> QueryBuilder {
        self.builder(QueryInput::Sql(sql.to_string()))
    }

    /// Build a query from a logical plan (the root must be an aggregate).
    /// Add [`QueryBuilder::group_by`] expressions for a grouped run.
    pub fn query_plan(&self, plan: &LogicalPlan) -> QueryBuilder {
        self.builder(QueryInput::Plan(plan.clone()))
    }

    fn builder(&self, input: QueryInput) -> QueryBuilder {
        let mut opts = self.engine.inner.defaults.clone();
        opts.seed = self.seed;
        QueryBuilder {
            engine: self.engine.clone(),
            session: self.id,
            input,
            group_by: Vec::new(),
            opts,
        }
    }
}

enum QueryInput {
    Sql(String),
    Plan(LogicalPlan),
}

/// One fluent surface for configuring and running a query — the successor
/// of the six `run_online*`/`approx_*` free functions.
pub struct QueryBuilder {
    engine: Engine,
    session: u64,
    input: QueryInput,
    group_by: Vec<Expr>,
    opts: QueryOptions,
}

impl QueryBuilder {
    /// Stop when every (tracked) aggregate's relative CI half-width is
    /// ≤ `epsilon` at `confidence` — the `WITHIN ε PERCENT CONFIDENCE γ`
    /// clause.
    pub fn within(mut self, epsilon: f64, confidence: f64) -> QueryBuilder {
        self.opts.rule = self.opts.rule.with_ci_target(epsilon, confidence);
        self
    }

    /// Seed for the plan's sampling operators, overriding the session's
    /// derived seed.
    pub fn seed(mut self, seed: u64) -> QueryBuilder {
        self.opts.seed = seed;
        self
    }

    /// Stop after consuming at least `rows` result tuples.
    pub fn rows(mut self, rows: u64) -> QueryBuilder {
        self.opts.rule = self.opts.rule.with_row_budget(rows);
        self
    }

    /// Stop after `budget` of wall-clock time.
    pub fn time(mut self, budget: Duration) -> QueryBuilder {
        self.opts.rule = self.opts.rule.with_time_budget(budget);
        self
    }

    /// Hard wall-clock deadline: cancel the query once `deadline` has
    /// elapsed and report the last valid snapshot with
    /// [`sa_plan::StopReason::Deadline`]. Distinct from the soft
    /// [`QueryBuilder::time`] budget (a stop *rule* the caller opted into):
    /// the deadline is an imposed upper bound, checked on every tick even
    /// when the rule never fires, and it wins over a simultaneous soft
    /// time-budget stop.
    pub fn deadline(mut self, deadline: Duration) -> QueryBuilder {
        self.opts.deadline = Some(deadline);
        self
    }

    /// Confidence level for reported intervals when no CI target is set.
    pub fn confidence(mut self, confidence: f64) -> QueryBuilder {
        self.opts.confidence = confidence;
        self
    }

    /// Target rows per pulled chunk.
    pub fn chunk_rows(mut self, rows: usize) -> QueryBuilder {
        self.opts.chunk_rows = rows;
        self
    }

    /// Worker threads driving the sampled plan (`> 1` disables shared-scan
    /// attach for this query).
    pub fn jobs(mut self, jobs: usize) -> QueryBuilder {
        self.opts.parallelism = jobs;
        self
    }

    /// Grow the pull hint as the estimate stabilizes.
    pub fn adaptive_chunks(mut self, on: bool) -> QueryBuilder {
        self.opts.adaptive_chunks = on;
        self
    }

    /// Visit the base table's blocks in a seeded random permutation —
    /// restores the random-scan-order assumption on physically ordered
    /// tables (see [`QueryOptions::shuffle_scan`]).
    pub fn shuffle_scan(mut self, on: bool) -> QueryBuilder {
        self.opts.shuffle_scan = on;
        self
    }

    /// Toggle projection/predicate pushdown into the scans (on by
    /// default). The realized sample and every estimate are identical
    /// either way (see [`QueryOptions::disable_pushdown`]); turning it off
    /// exists for benchmark baselines and the differential tests.
    pub fn pushdown(mut self, on: bool) -> QueryBuilder {
        self.opts.disable_pushdown = !on;
        self
    }

    /// Scale mid-stream estimates to the full population (default) or read
    /// raw prefix estimates.
    pub fn scale_to_population(mut self, on: bool) -> QueryBuilder {
        self.opts.scale_to_population = on;
        self
    }

    /// Grouped runs: judge the CI target on only the top-`k` groups by
    /// absolute estimate.
    pub fn ci_top_k(mut self, k: usize) -> QueryBuilder {
        self.opts.ci_top_k = Some(k);
        self
    }

    /// Group a plan query by these expressions (SQL queries carry their
    /// own `GROUP BY`).
    pub fn group_by(mut self, exprs: Vec<Expr>) -> QueryBuilder {
        self.group_by = exprs;
        self
    }

    /// Replace the whole option set (the other setters tweak fields on top
    /// of the session defaults; this swaps everything, seed included).
    pub fn options(mut self, opts: QueryOptions) -> QueryBuilder {
        self.opts = opts;
        self
    }

    /// Run synchronously to the stopping rule, discarding intermediate
    /// snapshots.
    pub fn run(self) -> Result<QueryResult> {
        self.run_with(|_| {})
    }

    /// Run synchronously, invoking `on_snapshot` after every chunk
    /// (including the final one).
    pub fn run_with(self, on_snapshot: impl FnMut(Snapshot)) -> Result<QueryResult> {
        let _guard = self.engine.admit(self.session)?;
        execute(
            &self.engine,
            self.session,
            self.input,
            self.group_by,
            self.opts,
            None,
            on_snapshot,
        )
    }

    /// Run on a background thread, returning a [`QueryHandle`] that
    /// streams snapshots, supports cancellation, and yields the final
    /// result.
    pub fn online(self) -> Result<QueryHandle> {
        let guard = self.engine.admit(self.session)?;
        let cancel = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel();
        let engine = self.engine;
        let session = self.session;
        let input = self.input;
        let group_by = self.group_by;
        let opts = self.opts;
        let cancel_in = Arc::clone(&cancel);
        let join = thread::Builder::new()
            .name("sa-query".into())
            .spawn(move || {
                let _guard = guard; // released when the query finishes
                execute(
                    &engine,
                    session,
                    input,
                    group_by,
                    opts,
                    Some(cancel_in),
                    |snap| {
                        // A receiver that went away is cancellation by
                        // disinterest, not an error.
                        let _ = tx.send(snap);
                    },
                )
            })
            .map_err(|e| Error::Unsupported(format!("cannot spawn query worker: {e}")))?;
        Ok(QueryHandle {
            cancel,
            rx,
            join: Some(join),
        })
    }

    /// Run the paper's one-shot batch estimator over the full sample — no
    /// snapshots, no stopping rule, just the final estimates with
    /// intervals.
    pub fn batch(self) -> Result<BatchOutput> {
        let _guard = self.engine.admit(self.session)?;
        self.engine.inner.obs.batch_queries.inc();
        let (plan, group_by, opts) = resolve(&self.engine, self.input, self.group_by, self.opts)?;
        let approx = ApproxOptions {
            seed: opts.seed,
            confidence: opts.rule.confidence_or(opts.confidence),
            subsample_target: None,
        };
        let catalog = self.engine.catalog();
        #[allow(deprecated)]
        if group_by.is_empty() {
            let r = sa_exec::approx_query(&plan, catalog, &approx)?;
            Ok(BatchOutput::Scalar(r))
        } else {
            let r = sa_exec::approx_group_query(&plan, &group_by, catalog, &approx)?;
            Ok(BatchOutput::Grouped(r))
        }
    }
}

/// Turn the builder's input into a runnable `(plan, group_by, options)`
/// triple: SQL is parsed and bound, its `WITHIN` clause overrides the CI
/// target, and its `GROUP BY` list decides scalar vs. grouped.
fn resolve(
    engine: &Engine,
    input: QueryInput,
    group_by: Vec<Expr>,
    mut opts: QueryOptions,
) -> Result<(LogicalPlan, Vec<Expr>, QueryOptions)> {
    match input {
        QueryInput::Sql(sql) => {
            if !group_by.is_empty() {
                return Err(Error::InvalidOptions(
                    "group_by() applies to plan queries; SQL queries carry their own GROUP BY"
                        .into(),
                ));
            }
            let (plan, group_by, rule) = plan_online_grouped_sql(&sql, engine.catalog())?;
            if let Some(rule) = rule {
                opts.rule.ci_target = rule.ci_target;
            }
            Ok((plan, group_by, opts))
        }
        QueryInput::Plan(plan) => Ok((plan, group_by, opts)),
    }
}

/// The scan fraction at stop, in permille: the *worst* (smallest)
/// per-relation coverage of the final snapshot — 1000 means every relation
/// was fully scanned.
fn scan_permille(progress: &[(u64, u64)]) -> u64 {
    progress
        .iter()
        .filter(|&&(_, available)| available > 0)
        .map(|&(consumed, available)| consumed.min(available) * 1000 / available)
        .min()
        .unwrap_or(1000)
}

/// The one dispatch point every terminal funnels into: resolve the input,
/// pick a shared scan hub if eligible, and run the scalar or grouped
/// progressive loop.
///
/// All instrumentation lives here and in the components the run context
/// carries — never inside the per-row paths — so an instrumented run
/// consumes the byte-identical sample realization an uninstrumented run
/// does (pinned by `tests/observability.rs`).
fn execute(
    engine: &Engine,
    session: u64,
    input: QueryInput,
    group_by: Vec<Expr>,
    opts: QueryOptions,
    cancel: Option<Arc<AtomicBool>>,
    mut on_snapshot: impl FnMut(Snapshot),
) -> Result<QueryResult> {
    let obs = &engine.inner.obs;
    let query = engine.inner.queries.fetch_add(1, Ordering::Relaxed) + 1;
    let (plan, group_by, opts) = resolve(engine, input, group_by, opts)?;
    let ctx = RunCtx {
        cancel,
        shared: engine.shared_hub(&plan, &group_by, &opts)?,
        pool: obs.pool.clone(),
        scan_obs: obs.scan.clone(),
    };
    obs.queries_started.inc();
    obs.registry
        .record(EventKind::QueryStarted { session, query });
    let start = Instant::now();
    let mut first = true;
    let mut prev_rows = 0u64;
    let mut tick = |rows: u64| {
        if first {
            first = false;
            if obs.first_snapshot_us.enabled() {
                obs.first_snapshot_us
                    .record(start.elapsed().as_micros() as u64);
            }
        }
        obs.snapshots.inc();
        obs.rows_consumed.add(rows.saturating_sub(prev_rows));
        obs.registry
            .record(EventKind::SnapshotEmitted { query, rows });
        prev_rows = rows;
    };
    let catalog = engine.catalog();
    let result = if group_by.is_empty() {
        drive_scalar(&plan, catalog, &opts, &ctx, |s| {
            tick(s.rows);
            on_snapshot(Snapshot::Scalar(s.clone()))
        })
        .map(QueryResult::from)
    } else {
        drive_grouped(&plan, &group_by, catalog, &opts, &ctx, |s| {
            tick(s.rows);
            on_snapshot(Snapshot::Grouped(s.clone()))
        })
        .map(QueryResult::from)
    };
    match &result {
        Ok(r) => {
            if obs.query_duration_us.enabled() {
                obs.query_duration_us
                    .record(start.elapsed().as_micros() as u64);
            }
            obs.queries_finished[reason_ix(r.reason)].inc();
            let permille = scan_permille(r.snapshot.progress());
            obs.stop_scan_permille.record(permille);
            obs.registry.record(EventKind::RuleFired {
                query,
                reason: reason_str(r.reason),
                scan_permille: permille,
            });
        }
        Err(_) => obs.query_errors.inc(),
    }
    result
}

/// A running online query: snapshots stream out as they are produced;
/// [`QueryHandle::cancel`] stops the loop at its next tick (the final
/// snapshot is still a valid mid-stream estimate, reported with
/// [`sa_plan::StopReason::Cancelled`]); [`QueryHandle::wait`] joins the
/// worker and returns the final [`QueryResult`]. Dropping the handle
/// cancels the query.
pub struct QueryHandle {
    cancel: Arc<AtomicBool>,
    rx: mpsc::Receiver<Snapshot>,
    join: Option<thread::JoinHandle<Result<QueryResult>>>,
}

impl QueryHandle {
    /// Ask the query to stop at its next snapshot tick. Idempotent; the
    /// loop finishes with [`sa_plan::StopReason::Cancelled`] unless a
    /// stopping rule or exhaustion wins the race.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Blocking iterator over the snapshots as the worker produces them;
    /// ends when the query finishes.
    pub fn snapshots(&self) -> impl Iterator<Item = Snapshot> + '_ {
        self.rx.iter()
    }

    /// The next snapshot if one is already queued (non-blocking).
    pub fn try_snapshot(&self) -> Option<Snapshot> {
        self.rx.try_recv().ok()
    }

    /// Has the worker finished (result ready, [`QueryHandle::wait`] will
    /// not block)?
    pub fn is_finished(&self) -> bool {
        self.join.as_ref().is_none_or(|j| j.is_finished())
    }

    /// Wait for the query to finish and return the final result.
    pub fn wait(mut self) -> Result<QueryResult> {
        let join = self.join.take().expect("wait consumes the handle");
        join.join()
            .map_err(|_| Error::Unsupported("query worker panicked".into()))?
    }
}

impl Drop for QueryHandle {
    fn drop(&mut self) {
        // An abandoned handle should not keep burning a worker (or an
        // admission slot) on a query nobody can observe any more.
        self.cancel();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_expr::col;
    use sa_plan::{AggSpec, StopReason};
    use sa_sampling::SamplingMethod;
    use sa_storage::{DataType, Field, Schema, TableBuilder, Value};

    fn catalog(rows: i64) -> Catalog {
        let mut c = Catalog::new();
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Float),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema);
        for i in 0..rows {
            b.push_row(&[Value::Int(i % 10), Value::Float(1.0 + (i % 7) as f64)])
                .unwrap();
        }
        c.register(b.finish().unwrap()).unwrap();
        c
    }

    fn sum_plan(p: f64) -> LogicalPlan {
        LogicalPlan::scan("t")
            .sample(SamplingMethod::Bernoulli { p })
            .aggregate(vec![AggSpec::sum(sa_expr::col("v"), "s")])
    }

    #[test]
    fn sessions_get_stable_distinct_seeds() {
        let c = catalog(10);
        let a = Engine::new(c);
        let (s1, s2) = (a.session(), a.session());
        assert_eq!(s1.id(), 1);
        assert_eq!(s2.id(), 2);
        assert_ne!(s1.seed(), s2.seed());
        // A second engine with the same defaults derives the same seeds:
        // session i is reproducible across restarts.
        let b = Engine::new(catalog(10));
        assert_eq!(b.session().seed(), s1.seed());
        assert_eq!(b.session().seed(), s2.seed());
    }

    #[test]
    fn plan_query_matches_the_deprecated_driver() {
        let c = catalog(4000);
        let engine = Engine::new(catalog(4000));
        let r = engine
            .session()
            .query_plan(&sum_plan(0.4))
            .seed(9)
            .chunk_rows(128)
            .run()
            .unwrap();
        assert_eq!(r.reason, StopReason::Exhausted);
        #[allow(deprecated)]
        let old = crate::driver::run_online(
            &sum_plan(0.4),
            &c,
            &crate::driver::OnlineOptions {
                seed: 9,
                chunk_rows: 128,
                ..Default::default()
            },
            |_| {},
        )
        .unwrap();
        let new = &r.snapshot.as_scalar().unwrap().aggs[0];
        assert_eq!(new.estimate, old.snapshot.aggs[0].estimate);
        assert_eq!(new.variance, old.snapshot.aggs[0].variance);
    }

    #[test]
    fn sql_group_by_becomes_a_grouped_snapshot() {
        let engine = Engine::new(catalog(4000));
        let r = engine
            .session()
            .query("SELECT k, SUM(v) AS s FROM t TABLESAMPLE (60 PERCENT) GROUP BY k")
            .seed(3)
            .run()
            .unwrap();
        let g = r.snapshot.as_grouped().expect("grouped variant");
        assert_eq!(g.groups.len(), 10);
        assert!(r.snapshot.as_scalar().is_none());
        // And the scalar query comes back scalar.
        let r = engine
            .session()
            .query("SELECT SUM(v) AS s FROM t TABLESAMPLE (60 PERCENT)")
            .run()
            .unwrap();
        assert!(r.snapshot.as_scalar().is_some());
    }

    #[test]
    fn sql_within_clause_sets_the_ci_target() {
        let engine = Engine::new(catalog(50_000));
        let r = engine
            .session()
            .query(
                "SELECT SUM(v) AS s FROM t TABLESAMPLE (50 PERCENT) \
                 WITHIN 5 PERCENT CONFIDENCE 95",
            )
            .seed(4)
            .chunk_rows(512)
            .run()
            .unwrap();
        assert_eq!(r.reason, StopReason::CiConverged);
        assert!(r.snapshot.rel_half_width().unwrap() <= 0.05);
    }

    #[test]
    fn online_handle_streams_snapshots_and_waits() {
        let engine = Engine::new(catalog(5000));
        let handle = engine
            .session()
            .query_plan(&sum_plan(0.5))
            .seed(3)
            .chunk_rows(256)
            .online()
            .unwrap();
        let mut rows_seen = Vec::new();
        for snap in handle.snapshots() {
            rows_seen.push(snap.rows());
        }
        let r = handle.wait().unwrap();
        assert_eq!(r.reason, StopReason::Exhausted);
        assert_eq!(r.chunks as usize, rows_seen.len());
        assert!(rows_seen.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*rows_seen.last().unwrap(), r.snapshot.rows());
    }

    #[test]
    fn cancellation_stops_with_a_valid_mid_stream_snapshot() {
        let engine = Engine::new(catalog(200_000));
        let handle = engine
            .session()
            .query_plan(&sum_plan(0.9))
            .seed(1)
            .chunk_rows(64)
            .online()
            .unwrap();
        // Cancel as soon as the first snapshot proves the loop is running.
        let first = handle.snapshots().next().expect("at least one snapshot");
        handle.cancel();
        let r = handle.wait().unwrap();
        assert_eq!(r.reason, StopReason::Cancelled);
        assert!(r.snapshot.rows() >= first.rows());
        let (consumed, available) = r.snapshot.progress()[0];
        assert!(consumed < available, "cancelled before exhaustion");
        // The mid-stream estimate still targets the full population.
        let est = r.snapshot.as_scalar().unwrap().aggs[0].estimate;
        let truth = 200_000.0 * 4.0; // v cycles 1..=7, mean 4.0
        assert!(
            (est - truth).abs() < 0.5 * truth,
            "estimate {est} vs {truth}"
        );
    }

    #[test]
    fn admission_control_rejects_past_the_bound_and_recovers() {
        let engine = Engine::builder(catalog(500_000)).max_concurrent(1).build();
        let handle = engine
            .session()
            .query_plan(&sum_plan(0.9))
            .chunk_rows(64)
            .online()
            .unwrap();
        // The running query holds the only slot.
        let err = engine
            .session()
            .query_plan(&sum_plan(0.5))
            .run()
            .unwrap_err();
        assert!(matches!(err, Error::Busy { active: 1, max: 1 }), "{err}");
        assert_eq!(engine.active_queries(), 1);
        handle.cancel();
        handle.wait().unwrap();
        // Slot released: the next query is admitted.
        assert_eq!(engine.active_queries(), 0);
        engine.session().query_plan(&sum_plan(0.5)).run().unwrap();
    }

    #[test]
    fn batch_terminal_runs_the_one_shot_estimator() {
        let engine = Engine::new(catalog(2000));
        let out = engine
            .session()
            .query("SELECT SUM(v) AS s FROM t TABLESAMPLE (50 PERCENT)")
            .seed(7)
            .batch()
            .unwrap();
        let r = out.as_scalar().expect("scalar batch");
        assert!((r.aggs[0].estimate - 8000.0).abs() < 1600.0);
        let out = engine
            .session()
            .query_plan(&sum_plan(0.5))
            .group_by(vec![col("k")])
            .batch()
            .unwrap();
        assert_eq!(out.as_grouped().expect("grouped batch").groups.len(), 10);
    }

    #[test]
    fn group_by_on_sql_input_is_rejected() {
        let engine = Engine::new(catalog(100));
        let err = engine
            .session()
            .query("SELECT SUM(v) AS s FROM t")
            .group_by(vec![col("k")])
            .run()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidOptions(_)), "{err}");
    }

    #[test]
    fn shared_scans_attach_queries_to_one_hub() {
        let engine = Engine::builder(catalog(3000)).shared_scans(true).build();
        let r1 = engine.session().query_plan(&sum_plan(0.5)).run().unwrap();
        assert_eq!(r1.reason, StopReason::Exhausted);
        let stats = engine.scan_stats("t").expect("hub created by the query");
        assert_eq!(stats.rows_gathered, 3000, "one full scan");
        assert_eq!(stats.attached, 0, "cursor released at exhaustion");
        // A second query revolves the same hub once more.
        engine.session().query_plan(&sum_plan(0.5)).run().unwrap();
        assert_eq!(engine.scan_stats("t").unwrap().rows_gathered, 6000);
        // Parallel queries keep private partitioned scans.
        engine
            .session()
            .query_plan(&sum_plan(0.5))
            .jobs(2)
            .run()
            .unwrap();
        assert_eq!(engine.scan_stats("t").unwrap().rows_gathered, 6000);
    }

    #[test]
    fn wait_after_cancel_returns_cancelled_with_the_terminal_snapshot() {
        // Regression: wait() directly after cancel() — without pumping the
        // snapshot channel — must join cleanly and report the unambiguous
        // terminal reason, with the final snapshot equal to the last one
        // the channel delivered.
        let engine = Engine::new(catalog(500_000));
        let handle = engine
            .session()
            .query_plan(&sum_plan(0.9))
            .seed(5)
            .chunk_rows(64)
            .online()
            .unwrap();
        handle.snapshots().next().expect("running");
        handle.cancel();
        let r = handle.wait().unwrap();
        assert_eq!(r.reason, StopReason::Cancelled);
        assert!(
            r.snapshot.rows() > 0,
            "terminal snapshot is a real estimate"
        );
    }

    #[test]
    fn double_cancel_is_idempotent_and_unambiguous() {
        let engine = Engine::new(catalog(500_000));
        let handle = engine
            .session()
            .query_plan(&sum_plan(0.9))
            .seed(6)
            .chunk_rows(64)
            .online()
            .unwrap();
        handle.cancel();
        handle.cancel(); // second cancel must be a no-op, not a panic/race
        let mut last_rows = 0;
        for snap in handle.snapshots() {
            last_rows = snap.rows();
        }
        let r = handle.wait().unwrap();
        assert_eq!(r.reason, StopReason::Cancelled);
        // The channel's last snapshot IS the terminal snapshot.
        assert_eq!(r.snapshot.rows(), last_rows);
        let (consumed, available) = r.snapshot.progress()[0];
        assert!(consumed < available, "cancelled well before exhaustion");
    }

    #[test]
    fn metrics_engine_counts_the_query_lifecycle() {
        let engine = Engine::builder(catalog(4000)).metrics(true).build();
        assert!(engine.registry().enabled());
        let r = engine
            .session()
            .query_plan(&sum_plan(0.5))
            .seed(2)
            .chunk_rows(256)
            .run()
            .unwrap();
        let snap = engine.metrics();
        assert_eq!(snap.counter("sa_sessions_opened_total"), Some(1));
        assert_eq!(snap.counter("sa_queries_started_total"), Some(1));
        assert_eq!(
            snap.counter("sa_queries_finished_total{reason=\"exhausted\"}"),
            Some(1)
        );
        assert_eq!(snap.counter("sa_snapshots_emitted_total"), Some(r.chunks));
        assert_eq!(
            snap.counter("sa_rows_consumed_total"),
            Some(r.snapshot.rows())
        );
        assert_eq!(snap.gauge("sa_active_queries"), Some(0));
        let dur = snap.histogram("sa_query_duration_us").unwrap();
        assert_eq!(dur.count, 1);
        let scan = snap.histogram("sa_stop_scan_permille").unwrap();
        assert_eq!((scan.count, scan.max), (1, 1000), "exhausted = full scan");
        let ttfs = snap.histogram("sa_time_to_first_snapshot_us").unwrap();
        assert_eq!(ttfs.count, 1);
        // The journal tells the same story, in order.
        let (events, _) = engine.registry().events();
        let kinds: Vec<&str> = events
            .iter()
            .map(|e| match e.kind {
                EventKind::QueryStarted { .. } => "started",
                EventKind::SnapshotEmitted { .. } => "snap",
                EventKind::RuleFired { .. } => "fired",
                _ => "other",
            })
            .collect();
        assert_eq!(kinds.first(), Some(&"started"));
        assert_eq!(kinds.last(), Some(&"fired"));
        assert_eq!(
            kinds.iter().filter(|k| **k == "snap").count() as u64,
            r.chunks
        );
    }

    #[test]
    fn uninstrumented_engine_reads_empty_metrics() {
        let engine = Engine::new(catalog(100));
        engine.session().query_plan(&sum_plan(0.5)).run().unwrap();
        assert!(!engine.registry().enabled());
        assert_eq!(engine.metrics(), MetricsSnapshot::default());
        assert_eq!(engine.render_prometheus(), "");
    }

    #[test]
    fn rejected_queries_count_as_admission_rejections() {
        let engine = Engine::builder(catalog(500_000))
            .max_concurrent(1)
            .metrics(true)
            .build();
        let handle = engine
            .session()
            .query_plan(&sum_plan(0.9))
            .chunk_rows(64)
            .online()
            .unwrap();
        handle.snapshots().next().expect("running");
        let err = engine
            .session()
            .query_plan(&sum_plan(0.5))
            .run()
            .unwrap_err();
        assert!(matches!(err, Error::Busy { .. }));
        handle.cancel();
        handle.wait().unwrap();
        let snap = engine.metrics();
        assert_eq!(snap.counter("sa_queries_rejected_total"), Some(1));
        assert_eq!(
            snap.counter("sa_queries_finished_total{reason=\"cancelled\"}"),
            Some(1)
        );
        let (events, _) = engine.registry().events();
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::SessionRejected { active: 1, .. })));
    }

    #[test]
    fn dropping_a_handle_cancels_the_query() {
        let engine = Engine::builder(catalog(500_000)).max_concurrent(1).build();
        let handle = engine
            .session()
            .query_plan(&sum_plan(0.9))
            .chunk_rows(64)
            .online()
            .unwrap();
        handle.snapshots().next().expect("running");
        drop(handle);
        // The worker notices the cancel at its next tick and releases the
        // admission slot.
        for _ in 0..200 {
            if engine.active_queries() == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert_eq!(engine.active_queries(), 0);
        engine.session().query_plan(&sum_plan(0.5)).run().unwrap();
    }
}
