#![allow(deprecated)] // exercises the pre-Engine API on purpose

//! Acceptance tests for the online loop on a TPC-H-style workload: the
//! ε/δ stopping rule fires, and the final progressive estimate equals the
//! batch estimator evaluated on exactly the consumed prefix.

use sa_core::{estimate_from_sample_moments, GroupedMoments};
use sa_exec::{f_vector, layout_dims, open_stream, ExecOptions};
use sa_online::{run_online_sql, OnlineOptions, StopReason, StoppingRule};
use sa_plan::LogicalPlan;
use sa_sql::plan_online_sql;
use sa_tpch::{generate, TpchConfig};

const SQL: &str = "SELECT SUM(l_quantity) AS q, COUNT(*) AS n \
                   FROM lineitem TABLESAMPLE (60 PERCENT) \
                   WITHIN 5 PERCENT CONFIDENCE 95";
const CHUNK: usize = 400;
const SEED: u64 = 7;

#[test]
fn online_loop_converges_and_matches_batch_on_the_consumed_prefix() {
    let catalog = generate(&TpchConfig::scale(0.002).with_seed(42));
    let opts = OnlineOptions {
        seed: SEED,
        chunk_rows: CHUNK,
        ..Default::default()
    };

    // Progressive run: must stop because the CI target was met, with the
    // worst relative half-width at or below ε, after genuinely consuming
    // only part of the sample.
    let mut widths = Vec::new();
    let online = run_online_sql(SQL, &catalog, &opts, |s| {
        widths.push(s.rel_half_width);
    })
    .unwrap();
    assert_eq!(online.reason, StopReason::CiConverged);
    let final_width = online.snapshot.rel_half_width.unwrap();
    assert!(final_width <= 0.05, "rel half-width {final_width}");
    assert!(online.chunks >= 2, "should take more than one chunk");
    // Only the last snapshot may satisfy the target (the loop stops at the
    // first hit), and widths shrink to it.
    for w in &widths[..widths.len() - 1] {
        assert!(w.is_none_or(|w| w > 0.05));
    }

    // Replay the same (plan, seed, chunk schedule): the prefix is
    // deterministic. Feed those rows to the BATCH accumulator and compare.
    let (plan, _) = plan_online_sql(SQL, &catalog).unwrap();
    let LogicalPlan::Aggregate { aggs, input } = &plan else {
        panic!("aggregate root expected")
    };
    let mut stream = open_stream(
        input,
        &catalog,
        &ExecOptions {
            seed: SEED,
            ..Default::default()
        },
    )
    .unwrap();
    let layout = layout_dims(aggs, stream.schema()).unwrap();
    let n = online.analysis.schema.n();
    let mut batch = GroupedMoments::new(n, layout.dims());
    for _ in 0..online.chunks {
        for row in stream.next_chunk(CHUNK).unwrap() {
            batch
                .push(&row.lineage, &f_vector(&layout, &row).unwrap())
                .unwrap();
        }
    }
    assert_eq!(batch.count(), online.snapshot.rows, "prefix mismatch");
    // Batch estimator on the prefix, under the same (scan-scaled) GUS the
    // online loop read its final snapshot with.
    let report = estimate_from_sample_moments(&online.snapshot.gus, &batch.finish()).unwrap();

    // SUM(l_quantity) is dimension 0, COUNT(*) dimension 1.
    for (dim, agg) in online.snapshot.aggs.iter().enumerate() {
        let (eo, eb) = (agg.estimate, report.estimate[dim]);
        assert!(
            (eo - eb).abs() <= 1e-9 * (1.0 + eb.abs()),
            "estimate[{dim}]: online {eo} vs batch {eb}"
        );
        let (vo, vb) = (agg.variance.unwrap(), report.variance(dim).unwrap());
        assert!(
            (vo - vb).abs() <= 1e-9 * (1.0 + vb.abs()),
            "variance[{dim}]: online {vo} vs batch {vb}"
        );
    }

    // Sanity: the converged estimate is close to the exact answer (the CI
    // was built to contain it with 95% probability; allow 3 half-widths).
    let exact = sa_exec::exact_query(&plan, &catalog).unwrap();
    let half = online.snapshot.aggs[0].ci_normal.unwrap().width() / 2.0;
    assert!(
        (online.snapshot.aggs[0].estimate - exact[0]).abs() < 3.0 * half.max(1.0),
        "estimate {} vs exact {}",
        online.snapshot.aggs[0].estimate,
        exact[0]
    );
}

#[test]
fn budgets_compose_with_the_sql_ci_target() {
    let catalog = generate(&TpchConfig::scale(0.001).with_seed(42));
    // A 1-row budget always beats the (much later) CI convergence.
    let opts = OnlineOptions {
        seed: 3,
        chunk_rows: 50,
        rule: StoppingRule::rows(1),
        ..Default::default()
    };
    let r = run_online_sql(SQL, &catalog, &opts, |_| {}).unwrap();
    assert_eq!(r.reason, StopReason::RowBudget);
    assert!(r.snapshot.rows <= 200, "rows = {}", r.snapshot.rows);
}

#[test]
fn join_query_streams_and_converges() {
    let catalog = generate(&TpchConfig::scale(0.002).with_seed(42));
    let sql = "SELECT SUM(l_quantity) AS q \
               FROM lineitem TABLESAMPLE (40 PERCENT), orders \
               WHERE l_orderkey = o_orderkey \
               WITHIN 10 PERCENT CONFIDENCE 90";
    let opts = OnlineOptions {
        seed: 11,
        chunk_rows: 300,
        ..Default::default()
    };
    let r = run_online_sql(sql, &catalog, &opts, |_| {}).unwrap();
    assert_eq!(r.reason, StopReason::CiConverged);
    assert!(r.snapshot.rel_half_width.unwrap() <= 0.10);
    assert_eq!(r.analysis.schema.n(), 2, "two base relations in lineage");
}
