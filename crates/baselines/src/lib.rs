#![allow(deprecated)] // exercises the pre-Engine API on purpose

//! # sa-baselines — the estimators the paper argues against (and with)
//!
//! The related-work section of the paper motivates GUS by the failure of
//! simpler analyses on joins. This crate implements those comparison points
//! so the evaluation can demonstrate the failure concretely:
//!
//! * [`naive_clt`] — treat the result tuples as independently included with
//!   probability `a` and apply the CLT. Correct for a single
//!   Bernoulli-sampled table (it coincides with the GUS formula there) but
//!   **ignores the correlation joins induce** ("if t is not selected,
//!   neither result tuple can exist"), so its intervals under-cover on
//!   multi-table queries.
//! * [`bootstrap`] — resample the result tuples with replacement and take
//!   percentile intervals; equally blind to join correlation.
//! * [`oracle_variance`] — the *true* Theorem-1 variance computed from the
//!   full population (execute the sampling-free plan, accumulate exact
//!   `y_S`, apply the GUS coefficients). The gold standard coverage
//!   experiments calibrate against.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use sa_core::{exact_variance, normal_ci, ConfidenceInterval, GroupedMoments};
use sa_exec::{approx_query, exact_query, execute, ApproxOptions, ExecOptions};
use sa_expr::{bind, eval_f64};
use sa_plan::{rewrite, AggFunc, LogicalPlan};
use sa_storage::Catalog;

/// Seed tweak for the bootstrap's own RNG stream.
const BOOTSTRAP_SEED_SALT: u64 = 0xb001_57ab_1e5e_ed00;

/// Result of a baseline estimator.
#[derive(Debug, Clone)]
pub struct BaselineEstimate {
    /// Point estimate of the aggregate.
    pub estimate: f64,
    /// The method's (possibly wrong) variance belief.
    pub variance: f64,
    /// The method's confidence interval.
    pub ci: ConfidenceInterval,
}

/// Naive IID-CLT estimate from the sampled result's `f` values under
/// first-order inclusion probability `a`.
///
/// `X = (1/a)Σf`; pretending inclusions are independent Bernoulli(a) gives
/// `V̂ar = (1−a)/a² · Σ_sample f²`.
pub fn naive_clt(fs: &[f64], a: f64, level: f64) -> sa_core::Result<BaselineEstimate> {
    if a <= 0.0 || a > 1.0 {
        return Err(sa_core::CoreError::InvalidParam(format!(
            "inclusion probability a = {a}"
        )));
    }
    let total: f64 = fs.iter().sum();
    let estimate = total / a;
    let sum_sq: f64 = fs.iter().map(|f| f * f).sum();
    let variance = (1.0 - a) / (a * a) * sum_sq;
    let ci = normal_ci(estimate, variance, level)?;
    Ok(BaselineEstimate {
        estimate,
        variance,
        ci,
    })
}

/// Bootstrap percentile interval: resample the result tuples with
/// replacement `resamples` times, re-estimate `(1/a)Σf`, and take the
/// empirical `(1±level)/2` quantiles.
pub fn bootstrap(
    fs: &[f64],
    a: f64,
    level: f64,
    resamples: u32,
    seed: u64,
) -> sa_core::Result<BaselineEstimate> {
    if a <= 0.0 || a > 1.0 {
        return Err(sa_core::CoreError::InvalidParam(format!(
            "inclusion probability a = {a}"
        )));
    }
    if !(0.0 < level && level < 1.0) {
        return Err(sa_core::CoreError::InvalidParam(format!(
            "confidence level {level}"
        )));
    }
    let total: f64 = fs.iter().sum();
    let estimate = total / a;
    if fs.is_empty() {
        let ci = normal_ci(0.0, 0.0, level)?;
        return Ok(BaselineEstimate {
            estimate: 0.0,
            variance: 0.0,
            ci,
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = Vec::with_capacity(resamples as usize);
    for _ in 0..resamples {
        let mut s = 0.0;
        for _ in 0..fs.len() {
            s += fs[rng.random_range(0..fs.len())];
        }
        stats.push(s / a);
    }
    stats.sort_by(|x, y| x.partial_cmp(y).expect("no NaN"));
    let lo_idx = (((1.0 - level) / 2.0) * (resamples as f64 - 1.0)).round() as usize;
    let hi_idx = (((1.0 + level) / 2.0) * (resamples as f64 - 1.0)).round() as usize;
    let mean: f64 = stats.iter().sum::<f64>() / stats.len() as f64;
    let variance: f64 =
        stats.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / stats.len() as f64;
    Ok(BaselineEstimate {
        estimate,
        variance,
        ci: ConfidenceInterval {
            lo: stats[lo_idx],
            hi: stats[hi_idx],
            level,
            method: sa_core::CiMethod::Normal,
        },
    })
}

/// The exact Theorem-1 variance of the plan's estimator, computed from the
/// full population (no sampling executed). The first aggregate must be
/// `SUM`/`COUNT`.
pub fn oracle_variance(plan: &LogicalPlan, catalog: &Catalog) -> sa_exec::Result<f64> {
    let analysis = rewrite(plan, catalog)?;
    let LogicalPlan::Aggregate { aggs, input } = &analysis.core else {
        return Err(sa_exec::ExecError::Unsupported(
            "oracle_variance requires an aggregate plan".into(),
        ));
    };
    let spec = aggs
        .first()
        .ok_or_else(|| sa_exec::ExecError::Unsupported("no aggregates".into()))?;
    if spec.func == AggFunc::Avg {
        return Err(sa_exec::ExecError::Unsupported(
            "oracle variance for AVG is a delta-method quantity; use SUM/COUNT".into(),
        ));
    }
    let rs = execute(input, catalog, &ExecOptions::default())?;
    let bound = spec
        .expr
        .as_ref()
        .map(|e| bind(e, &rs.schema))
        .transpose()
        .map_err(sa_exec::ExecError::Expr)?;
    let mut acc = GroupedMoments::new(analysis.schema.n(), 1);
    for row in &rs.rows {
        let f = match &bound {
            None => 1.0,
            Some(e) => match spec.func {
                AggFunc::Count => {
                    if eval_f64(e, &row.values)
                        .map_err(sa_exec::ExecError::Expr)?
                        .is_some()
                    {
                        1.0
                    } else {
                        0.0
                    }
                }
                _ => eval_f64(e, &row.values)
                    .map_err(sa_exec::ExecError::Expr)?
                    .unwrap_or(0.0),
            },
        };
        acc.push_scalar(&row.lineage, f)
            .map_err(sa_exec::ExecError::Core)?;
    }
    Ok(exact_variance(&analysis.gus, &acc.finish(), 0))
}

/// One head-to-head run of all estimators on the same sampled execution.
#[derive(Debug, Clone)]
pub struct ComparisonRun {
    /// Ground-truth answer (sampling-free execution).
    pub exact: f64,
    /// The GUS/SBox estimate and interval.
    pub gus: sa_exec::AggResult,
    /// Naive IID-CLT baseline.
    pub naive: BaselineEstimate,
    /// Bootstrap percentile baseline.
    pub bootstrap: BaselineEstimate,
    /// True Theorem-1 variance (oracle).
    pub oracle_variance: f64,
}

/// Run GUS, naive CLT and bootstrap on the *same* sampled execution of
/// `plan` (first aggregate only), plus the exact answer and oracle variance.
pub fn compare_estimators(
    plan: &LogicalPlan,
    catalog: &Catalog,
    seed: u64,
    level: f64,
    bootstrap_resamples: u32,
) -> sa_exec::Result<ComparisonRun> {
    let approx = approx_query(
        plan,
        catalog,
        &ApproxOptions {
            seed,
            confidence: level,
            subsample_target: None,
        },
    )?;
    let gus = approx.aggs[0].clone();
    let a = approx.analysis.gus.a();

    // Re-execute the sampled input with the same seed to extract raw f
    // values for the baselines (execution is deterministic in the seed).
    let LogicalPlan::Aggregate { aggs, input } = plan else {
        return Err(sa_exec::ExecError::Unsupported(
            "comparison requires an aggregate plan".into(),
        ));
    };
    let rs = execute(
        input,
        catalog,
        &ExecOptions {
            seed,
            ..Default::default()
        },
    )?;
    let spec = &aggs[0];
    let bound = spec
        .expr
        .as_ref()
        .map(|e| bind(e, &rs.schema))
        .transpose()
        .map_err(sa_exec::ExecError::Expr)?;
    let mut fs = Vec::with_capacity(rs.rows.len());
    for row in &rs.rows {
        let f = match &bound {
            None => 1.0,
            Some(e) => eval_f64(e, &row.values)
                .map_err(sa_exec::ExecError::Expr)?
                .unwrap_or(0.0),
        };
        fs.push(f);
    }

    let naive = naive_clt(&fs, a, level).map_err(sa_exec::ExecError::Core)?;
    let boot = bootstrap(
        &fs,
        a,
        level,
        bootstrap_resamples,
        seed ^ BOOTSTRAP_SEED_SALT,
    )
    .map_err(sa_exec::ExecError::Core)?;
    let exact = exact_query(plan, catalog)?[0];
    let oracle = oracle_variance(plan, catalog)?;
    Ok(ComparisonRun {
        exact,
        gus,
        naive,
        bootstrap: boot,
        oracle_variance: oracle,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_expr::col;
    use sa_plan::AggSpec;
    use sa_sampling::SamplingMethod;
    use sa_storage::{DataType, Field, Schema, TableBuilder, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Float),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema);
        for i in 0..500 {
            b.push_row(&[Value::Int(i % 50), Value::Float(1.0 + (i % 7) as f64)])
                .unwrap();
        }
        c.register(b.finish().unwrap()).unwrap();
        // Dimension table: each k joins 4 rows (fan-out causes correlation).
        let schema = Schema::new(vec![
            Field::new("dk", DataType::Int),
            Field::new("w", DataType::Float),
        ])
        .unwrap();
        let mut b = TableBuilder::new("d", schema);
        for i in 0..200 {
            b.push_row(&[Value::Int(i % 50), Value::Float(2.0)])
                .unwrap();
        }
        c.register(b.finish().unwrap()).unwrap();
        c
    }

    #[test]
    fn naive_matches_gus_on_single_bernoulli_table() {
        // For one Bernoulli table the naive analysis IS the GUS analysis.
        let plan = LogicalPlan::scan("t")
            .sample(SamplingMethod::Bernoulli { p: 0.3 })
            .aggregate(vec![AggSpec::sum(col("v"), "s")]);
        let run = compare_estimators(&plan, &catalog(), 5, 0.95, 200).unwrap();
        let gus_var = run.gus.variance.unwrap();
        assert!(
            (run.naive.variance - gus_var).abs() < 1e-6 * gus_var.max(1.0),
            "naive {} vs gus {}",
            run.naive.variance,
            gus_var
        );
    }

    #[test]
    fn naive_underestimates_variance_on_joins() {
        // Sampling t then joining d (fan-out 4): result tuples sharing a t
        // tuple are perfectly correlated; naive treats them as independent
        // and underestimates.
        let plan = LogicalPlan::scan("t")
            .sample(SamplingMethod::Bernoulli { p: 0.3 })
            .join_on(LogicalPlan::scan("d"), col("k").eq(col("dk")))
            .aggregate(vec![AggSpec::sum(col("w"), "s")]);
        let cat = catalog();
        let run = compare_estimators(&plan, &cat, 5, 0.95, 200).unwrap();
        // Oracle (true) variance exceeds the naive belief substantially.
        assert!(
            run.oracle_variance > 2.0 * run.naive.variance,
            "oracle {} vs naive {}",
            run.oracle_variance,
            run.naive.variance
        );
        // And the GUS estimate tracks the oracle much better (within 3× on
        // a single draw).
        let gus_var = run.gus.variance.unwrap();
        assert!(
            gus_var > run.oracle_variance / 3.0 && gus_var < run.oracle_variance * 3.0,
            "gus {} vs oracle {}",
            gus_var,
            run.oracle_variance
        );
    }

    #[test]
    fn oracle_matches_closed_form_single_table() {
        let plan = LogicalPlan::scan("t")
            .sample(SamplingMethod::Bernoulli { p: 0.2 })
            .aggregate(vec![AggSpec::sum(col("v"), "s")]);
        let cat = catalog();
        let v = oracle_variance(&plan, &cat).unwrap();
        // ((1−p)/p)·Σf² over the population.
        let t = cat.get("t").unwrap();
        let col_v = t.column_by_name("t.v").unwrap();
        let sum_sq: f64 = (0..t.row_count() as usize)
            .map(|r| {
                let f = col_v.f64_at(r).unwrap();
                f * f
            })
            .sum();
        let expect = 0.8 / 0.2 * sum_sq;
        assert!((v - expect).abs() < 1e-6 * expect);
    }

    #[test]
    fn bootstrap_interval_contains_its_estimate() {
        let fs: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let b = bootstrap(&fs, 0.5, 0.95, 500, 7).unwrap();
        assert!(b.ci.lo <= b.estimate && b.estimate <= b.ci.hi);
        assert!(b.variance > 0.0);
    }

    #[test]
    fn bootstrap_empty_sample() {
        let b = bootstrap(&[], 0.5, 0.95, 100, 0).unwrap();
        assert_eq!(b.estimate, 0.0);
        assert_eq!(b.ci.width(), 0.0);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(naive_clt(&[1.0], 0.0, 0.95).is_err());
        assert!(naive_clt(&[1.0], 1.5, 0.95).is_err());
        assert!(bootstrap(&[1.0], 0.5, 1.5, 10, 0).is_err());
    }

    #[test]
    fn oracle_avg_unsupported() {
        let plan = LogicalPlan::scan("t")
            .sample(SamplingMethod::Bernoulli { p: 0.5 })
            .aggregate(vec![AggSpec::avg(col("v"), "a")]);
        assert!(oracle_variance(&plan, &catalog()).is_err());
    }
}
