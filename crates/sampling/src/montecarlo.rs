//! Monte-Carlo measurement of GUS parameters.
//!
//! The GUS translation table (Figure 1) is closed-form; this module measures
//! the same quantities empirically by repeated sampling, so tests (and the
//! Figure 1 experiment binary) can verify that every [`SamplingMethod`]'s
//! claimed `(a, b̄)` matches the process it actually runs — a differential
//! check between the sampler implementation and its analysis.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sa_storage::Table;

use crate::method::{LineageUnit, SamplingMethod};
use crate::Result;

/// Empirically measured single-relation GUS parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmpiricalGus {
    /// Estimated `a = P[u ∈ S]` for a fixed lineage unit `u`.
    pub a: f64,
    /// Estimated `b_∅ = P[u, u' ∈ S]` for two fixed *distinct* units.
    pub b_empty: f64,
    /// Number of trials performed.
    pub trials: u32,
}

/// Measure `a` and `b_∅` of `method` over `table` by repeated sampling.
///
/// Measurements are taken at the method's lineage granularity (rows, or
/// blocks for `SYSTEM`), on the first two units of the table; GUS uniformity
/// makes the choice of units irrelevant. The table must contain at least two
/// lineage units.
pub fn measure_single_relation(
    method: &SamplingMethod,
    table: &Table,
    trials: u32,
    seed: u64,
) -> Result<EmpiricalGus> {
    let unit_of = |row: u64| -> u64 {
        match method.lineage_unit() {
            LineageUnit::Row => row,
            LineageUnit::Block => table.block_of(row),
        }
    };
    let (u0, u1) = (0u64, {
        // Find the first row belonging to a different unit than row 0.
        let mut row = 1;
        while row < table.row_count() && unit_of(row) == unit_of(0) {
            row += 1;
        }
        assert!(
            row < table.row_count(),
            "table needs at least two lineage units"
        );
        unit_of(row)
    });

    let mut rng = StdRng::seed_from_u64(seed);
    let mut hit0 = 0u32;
    let mut hit_both = 0u32;
    for _ in 0..trials {
        let ids = method.sample(table, &mut rng)?;
        let units: HashSet<u64> = ids.iter().map(|&r| unit_of(r)).collect();
        let in0 = units.contains(&u0);
        let in1 = units.contains(&u1);
        if in0 {
            hit0 += 1;
        }
        if in0 && in1 {
            hit_both += 1;
        }
    }
    Ok(EmpiricalGus {
        a: hit0 as f64 / trials as f64,
        b_empty: hit_both as f64 / trials as f64,
        trials,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_core::RelSet;
    use sa_storage::{DataType, Field, Schema, TableBuilder, Value};

    fn table(rows: u64, block_rows: usize) -> Table {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]).unwrap();
        let mut b = TableBuilder::new("t", schema).with_block_rows(block_rows);
        for i in 0..rows {
            b.push_row(&[Value::Int(i as i64)]).unwrap();
        }
        b.finish().unwrap()
    }

    /// Shared check: empirical (a, b_∅) within 3σ + a small absolute slack of
    /// the closed form.
    fn check(method: SamplingMethod, table: &Table, trials: u32) {
        let gus = method.gus("t", table).unwrap();
        let emp = measure_single_relation(&method, table, trials, 7).unwrap();
        let tol = |p: f64| 3.0 * (p * (1.0 - p) / trials as f64).sqrt() + 0.002;
        assert!(
            (emp.a - gus.a()).abs() < tol(gus.a()),
            "{method}: empirical a {} vs {}",
            emp.a,
            gus.a()
        );
        let b0 = gus.b(RelSet::EMPTY);
        assert!(
            (emp.b_empty - b0).abs() < tol(b0),
            "{method}: empirical b_empty {} vs {}",
            emp.b_empty,
            b0
        );
    }

    // 20k trials keep the 3σ band tight enough to catch real bias while
    // making seed flukes rare: at 4k trials the b_∅ estimator's σ is ~0.0045
    // and seed 7 lands 3.8σ low on the Bernoulli check by sheer bad luck
    // (other seeds, and more trials with the same seed, converge to p²).

    #[test]
    fn bernoulli_matches_closed_form() {
        check(
            SamplingMethod::Bernoulli { p: 0.3 },
            &table(40, 256),
            20_000,
        );
    }

    #[test]
    fn wor_matches_closed_form() {
        // WOR pairs are negatively correlated: b_∅ = n(n−1)/(N(N−1)) < a².
        check(SamplingMethod::Wor { size: 8 }, &table(40, 256), 20_000);
    }

    #[test]
    fn system_matches_closed_form_at_block_granularity() {
        // 10 blocks of 10 rows; block-level Bernoulli(0.4).
        check(SamplingMethod::System { p: 0.4 }, &table(100, 10), 20_000);
    }

    #[test]
    fn wor_negative_correlation_visible() {
        let t = table(20, 256);
        let m = SamplingMethod::Wor { size: 5 };
        let emp = measure_single_relation(&m, &t, 6000, 3).unwrap();
        // a = 0.25, a² = 0.0625, true b_∅ = 5·4/(20·19) ≈ 0.0526 < a².
        assert!(emp.b_empty < 0.0625, "b_empty = {}", emp.b_empty);
    }

    #[test]
    #[should_panic(expected = "at least two lineage units")]
    fn single_unit_table_rejected() {
        let t = table(5, 10); // one block
        let _ = measure_single_relation(&SamplingMethod::System { p: 0.5 }, &t, 10, 0);
    }
}
