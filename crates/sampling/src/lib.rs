//! # sa-sampling — sampling operators with GUS translations
//!
//! The concrete sampling methods of the paper's Figure 1 plus the SQL
//! standard's block-level `SYSTEM` sampling and a non-GUS with-replacement
//! method for baselines:
//!
//! * [`SamplingMethod::Bernoulli`] — tuple-level coin flips;
//! * [`SamplingMethod::Wor`] — fixed-size without replacement (Floyd's
//!   algorithm);
//! * [`SamplingMethod::System`] — block-level Bernoulli, analyzable as GUS at
//!   **block** lineage granularity ([`LineageUnit::Block`]);
//! * [`SamplingMethod::WithReplacement`] — for the ripple-join style
//!   baseline; explicitly *not* GUS (duplicates).
//!
//! AQUA-style correlated foreign-key sampling needs no dedicated operator in
//! this algebra: sampling the fact table with Bernoulli(p) and joining the
//! *unsampled* dimension is SOA-equivalent to it for FK joins (each fact
//! tuple matches exactly one dimension tuple, and unreferenced dimension
//! tuples never reach the result). The integration tests pin this down.
//!
//! [`montecarlo`] measures GUS parameters empirically, letting the test
//! suite differentially verify each method's analysis against the process it
//! actually runs.

#![warn(missing_docs)]

pub mod error;
pub mod method;
pub mod montecarlo;

pub use error::SamplingError;
pub use method::{LineageUnit, SamplingMethod};
pub use montecarlo::{measure_single_relation, EmpiricalGus};

/// Crate-wide result alias.
pub type Result<T, E = SamplingError> = std::result::Result<T, E>;
