//! Error type for sampling operators.

use std::fmt;

/// Errors from configuring a sampling method or deriving its GUS parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum SamplingError {
    /// A probability outside `[0, 1]` or a sample size larger than the
    /// population.
    InvalidSpec(String),
    /// The method has no GUS representation (e.g. sampling with replacement,
    /// which produces duplicates — see Section 9, "Extending randomized
    /// filtering").
    NotGus {
        /// The offending method's rendering.
        method: String,
    },
    /// Propagated GUS parameter error.
    Core(sa_core::CoreError),
}

impl fmt::Display for SamplingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SamplingError::InvalidSpec(msg) => write!(f, "invalid sampling spec: {msg}"),
            SamplingError::NotGus { method } => write!(
                f,
                "{method} is not a GUS method (it can produce duplicates) and cannot be analyzed"
            ),
            SamplingError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SamplingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SamplingError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sa_core::CoreError> for SamplingError {
    fn from(e: sa_core::CoreError) -> Self {
        SamplingError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = SamplingError::NotGus {
            method: "WR(5)".into(),
        };
        assert!(e.to_string().contains("WR(5)"));
        assert!(e.to_string().contains("duplicates"));
    }
}
