//! Sampling operators and their GUS translations.
//!
//! Each [`SamplingMethod`] can (a) draw a sample of row ids from a table and
//! (b) describe itself as a single-relation [`GusParams`] (the Figure 1
//! table of the paper), which is the entry point of the SOA rewriter.
//!
//! The `SYSTEM` method (block-level Bernoulli, mirroring the SQL standard's
//! implementation-defined `TABLESAMPLE SYSTEM`) is the reason lineage
//! granularity is configurable: tuples in one block live or die together, so
//! pair-inclusion probabilities depend on block co-residency — not
//! expressible over row lineage, but *exactly* Bernoulli over **block**
//! lineage. [`SamplingMethod::lineage_unit`] tells the executor which id to
//! report for tuples of that relation.
//!
//! `WITH REPLACEMENT` sampling is provided for baseline comparisons but is
//! **not** a GUS method (it produces duplicates; the paper's Section 9
//! discusses this limitation): asking for its GUS parameters is an error.

use std::collections::HashSet;
use std::fmt;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use sa_core::GusParams;
use sa_storage::{RowId, Table};

use crate::error::SamplingError;
use crate::Result;

/// Which identifier the executor must report as lineage for a sampled
/// relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineageUnit {
    /// Per-row lineage (the default).
    Row,
    /// Per-block lineage (block-level sampling: the block is the sampling
    /// unit, so it is also the lineage unit).
    Block,
}

/// A uniform sampling operator over one base relation.
#[derive(Debug, Clone, PartialEq)]
pub enum SamplingMethod {
    /// Tuple-level Bernoulli sampling with inclusion probability `p`
    /// (`TABLESAMPLE (p·100 PERCENT)`).
    Bernoulli {
        /// Inclusion probability.
        p: f64,
    },
    /// Fixed-size uniform sampling without replacement
    /// (`TABLESAMPLE (size ROWS)`).
    Wor {
        /// Number of rows to draw.
        size: u64,
    },
    /// Block-level Bernoulli sampling (`TABLESAMPLE SYSTEM (p·100 PERCENT)`):
    /// each block is kept with probability `p`, tuples ride along with their
    /// block.
    System {
        /// Block inclusion probability.
        p: f64,
    },
    /// Fixed-size uniform sampling **with** replacement. Provided for the
    /// ripple-join/online-aggregation baseline; *not* a GUS method.
    WithReplacement {
        /// Number of draws.
        size: u64,
    },
}

impl SamplingMethod {
    /// Validate the specification (probability ranges; sizes are checked
    /// against the table at sampling time).
    pub fn validate(&self) -> Result<()> {
        match self {
            SamplingMethod::Bernoulli { p } | SamplingMethod::System { p } => {
                if !(0.0..=1.0).contains(p) || !p.is_finite() {
                    return Err(SamplingError::InvalidSpec(format!(
                        "probability {p} not in [0,1]"
                    )));
                }
            }
            SamplingMethod::Wor { .. } | SamplingMethod::WithReplacement { .. } => {}
        }
        Ok(())
    }

    /// True if the method is analyzable as GUS.
    pub fn is_gus(&self) -> bool {
        !matches!(self, SamplingMethod::WithReplacement { .. })
    }

    /// The lineage granularity the executor must use for this relation.
    pub fn lineage_unit(&self) -> LineageUnit {
        match self {
            SamplingMethod::System { .. } => LineageUnit::Block,
            _ => LineageUnit::Row,
        }
    }

    /// The single-relation GUS parameters of this method applied to `table`,
    /// registered under relation name `relation` (Figure 1 of the paper,
    /// plus the block-lineage translation of `SYSTEM`).
    pub fn gus(&self, relation: &str, table: &Table) -> Result<GusParams> {
        self.validate()?;
        match self {
            SamplingMethod::Bernoulli { p } => Ok(GusParams::bernoulli(relation, *p)?),
            // Block-level Bernoulli is row-level Bernoulli over block ids.
            SamplingMethod::System { p } => Ok(GusParams::bernoulli(relation, *p)?),
            SamplingMethod::Wor { size } => {
                let population = table.row_count();
                if *size > population {
                    return Err(SamplingError::InvalidSpec(format!(
                        "WOR size {size} exceeds population {population} of `{relation}`"
                    )));
                }
                Ok(GusParams::wor(relation, *size, population)?)
            }
            SamplingMethod::WithReplacement { .. } => Err(SamplingError::NotGus {
                method: self.to_string(),
            }),
        }
    }

    /// Draw a sample of row ids from `table` with the supplied RNG. The
    /// result may contain duplicates only for `WithReplacement`; it is in
    /// ascending order for the other methods.
    pub fn sample(&self, table: &Table, rng: &mut StdRng) -> Result<Vec<RowId>> {
        self.validate()?;
        let n = table.row_count();
        Ok(match self {
            SamplingMethod::Bernoulli { p } => {
                (0..n).filter(|_| rng.random::<f64>() < *p).collect()
            }
            SamplingMethod::Wor { size } => {
                if *size > n {
                    return Err(SamplingError::InvalidSpec(format!(
                        "WOR size {size} exceeds population {n}"
                    )));
                }
                let mut ids = floyd_sample(n, *size, rng);
                ids.sort_unstable();
                ids
            }
            SamplingMethod::System { p } => {
                let mut out = Vec::new();
                for block in 0..table.block_count() {
                    if rng.random::<f64>() < *p {
                        let (start, end) = table.block_range(block);
                        out.extend(start..end);
                    }
                }
                out
            }
            SamplingMethod::WithReplacement { size } => {
                if n == 0 {
                    return Err(SamplingError::InvalidSpec(
                        "cannot draw with replacement from an empty table".into(),
                    ));
                }
                (0..*size).map(|_| rng.random_range(0..n)).collect()
            }
        })
    }

    /// Deterministic variant: draw with a seed.
    pub fn sample_seeded(&self, table: &Table, seed: u64) -> Result<Vec<RowId>> {
        let mut rng = StdRng::seed_from_u64(seed);
        self.sample(table, &mut rng)
    }
}

impl fmt::Display for SamplingMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SamplingMethod::Bernoulli { p } => write!(f, "B{p}"),
            SamplingMethod::Wor { size } => write!(f, "WOR{size}"),
            SamplingMethod::System { p } => write!(f, "SYSTEM{p}"),
            SamplingMethod::WithReplacement { size } => write!(f, "WR{size}"),
        }
    }
}

/// Robert Floyd's algorithm: `k` distinct uniform draws from `0..n` in
/// `O(k)` expected time and `O(k)` space.
fn floyd_sample(n: u64, k: u64, rng: &mut StdRng) -> Vec<RowId> {
    let mut chosen: HashSet<u64> = HashSet::with_capacity(k as usize);
    for j in n - k..n {
        let t = rng.random_range(0..=j);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    chosen.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_storage::{DataType, Field, Schema, TableBuilder, Value};

    fn table(rows: u64, block_rows: usize) -> Table {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]).unwrap();
        let mut b = TableBuilder::new("t", schema).with_block_rows(block_rows);
        for i in 0..rows {
            b.push_row(&[Value::Int(i as i64)]).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn bernoulli_rate() {
        let t = table(20_000, 256);
        let ids = SamplingMethod::Bernoulli { p: 0.25 }
            .sample_seeded(&t, 1)
            .unwrap();
        let rate = ids.len() as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate = {rate}");
        // Distinct and in order.
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn wor_exact_size_distinct() {
        let t = table(1000, 256);
        let ids = SamplingMethod::Wor { size: 137 }
            .sample_seeded(&t, 2)
            .unwrap();
        assert_eq!(ids.len(), 137);
        assert!(ids.windows(2).all(|w| w[0] < w[1])); // distinct + sorted
        assert!(ids.iter().all(|&i| i < 1000));
    }

    #[test]
    fn wor_full_population() {
        let t = table(50, 256);
        let ids = SamplingMethod::Wor { size: 50 }
            .sample_seeded(&t, 3)
            .unwrap();
        assert_eq!(ids, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn wor_oversize_rejected() {
        let t = table(10, 256);
        assert!(SamplingMethod::Wor { size: 11 }
            .sample_seeded(&t, 0)
            .is_err());
        assert!(SamplingMethod::Wor { size: 11 }.gus("t", &t).is_err());
    }

    #[test]
    fn wor_is_uniform_over_rows() {
        // Each row should appear in roughly trials·k/n samples.
        let t = table(20, 256);
        let mut counts = [0u32; 20];
        for seed in 0..2000 {
            for id in (SamplingMethod::Wor { size: 5 })
                .sample_seeded(&t, seed)
                .unwrap()
            {
                counts[id as usize] += 1;
            }
        }
        // Expected 500 each; allow ±20%.
        for (i, &c) in counts.iter().enumerate() {
            assert!((400..600).contains(&c), "row {i} drawn {c} times");
        }
    }

    #[test]
    fn system_keeps_whole_blocks() {
        let t = table(1000, 100); // 10 blocks
        let ids = SamplingMethod::System { p: 0.5 }
            .sample_seeded(&t, 4)
            .unwrap();
        // Every kept block must be complete.
        let mut blocks: Vec<u64> = ids.iter().map(|&i| i / 100).collect();
        blocks.dedup();
        for b in &blocks {
            let members = ids.iter().filter(|&&i| i / 100 == *b).count();
            assert_eq!(members, 100, "block {b} incomplete");
        }
    }

    #[test]
    fn system_lineage_unit_is_block() {
        assert_eq!(
            SamplingMethod::System { p: 0.1 }.lineage_unit(),
            LineageUnit::Block
        );
        assert_eq!(
            SamplingMethod::Bernoulli { p: 0.1 }.lineage_unit(),
            LineageUnit::Row
        );
    }

    #[test]
    fn with_replacement_draws_exactly_size_with_duplicates_possible() {
        let t = table(10, 256);
        let ids = SamplingMethod::WithReplacement { size: 100 }
            .sample_seeded(&t, 5)
            .unwrap();
        assert_eq!(ids.len(), 100);
        assert!(ids.iter().all(|&i| i < 10));
        // With 100 draws from 10 rows duplicates are certain.
        let distinct: HashSet<_> = ids.iter().collect();
        assert!(distinct.len() < 100);
    }

    #[test]
    fn with_replacement_is_not_gus() {
        let t = table(10, 256);
        assert!(!SamplingMethod::WithReplacement { size: 5 }.is_gus());
        assert!(matches!(
            SamplingMethod::WithReplacement { size: 5 }.gus("t", &t),
            Err(SamplingError::NotGus { .. })
        ));
    }

    #[test]
    fn gus_translations_match_figure1() {
        let t = table(150, 256);
        let g = SamplingMethod::Bernoulli { p: 0.1 }.gus("l", &t).unwrap();
        assert!((g.a() - 0.1).abs() < 1e-12);
        assert!((g.b_named::<&str>(&[]).unwrap() - 0.01).abs() < 1e-12);

        let g = SamplingMethod::Wor { size: 15 }.gus("o", &t).unwrap();
        assert!((g.a() - 0.1).abs() < 1e-12);
        let expect = 15.0 * 14.0 / (150.0 * 149.0);
        assert!((g.b_named::<&str>(&[]).unwrap() - expect).abs() < 1e-12);

        // SYSTEM is Bernoulli over blocks.
        let g = SamplingMethod::System { p: 0.2 }.gus("s", &t).unwrap();
        assert!((g.a() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn invalid_probabilities_rejected() {
        let t = table(10, 256);
        for m in [
            SamplingMethod::Bernoulli { p: -0.1 },
            SamplingMethod::Bernoulli { p: 1.1 },
            SamplingMethod::System { p: f64::NAN },
        ] {
            assert!(m.validate().is_err());
            assert!(m.sample_seeded(&t, 0).is_err());
        }
    }

    #[test]
    fn empty_table_edge_cases() {
        let t = table(0, 256);
        assert!(SamplingMethod::Bernoulli { p: 0.5 }
            .sample_seeded(&t, 0)
            .unwrap()
            .is_empty());
        assert!(SamplingMethod::Wor { size: 0 }
            .sample_seeded(&t, 0)
            .unwrap()
            .is_empty());
        assert!(SamplingMethod::WithReplacement { size: 1 }
            .sample_seeded(&t, 0)
            .is_err());
    }

    #[test]
    fn display_renderings() {
        assert_eq!(SamplingMethod::Bernoulli { p: 0.1 }.to_string(), "B0.1");
        assert_eq!(SamplingMethod::Wor { size: 1000 }.to_string(), "WOR1000");
        assert_eq!(SamplingMethod::System { p: 0.5 }.to_string(), "SYSTEM0.5");
        assert_eq!(
            SamplingMethod::WithReplacement { size: 7 }.to_string(),
            "WR7"
        );
    }

    #[test]
    fn seeded_sampling_is_reproducible() {
        let t = table(500, 64);
        for m in [
            SamplingMethod::Bernoulli { p: 0.3 },
            SamplingMethod::Wor { size: 77 },
            SamplingMethod::System { p: 0.4 },
        ] {
            assert_eq!(
                m.sample_seeded(&t, 99).unwrap(),
                m.sample_seeded(&t, 99).unwrap()
            );
        }
    }
}
