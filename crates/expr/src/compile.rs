//! Expression compilation: type-resolve once, evaluate over columns.
//!
//! [`compile`] turns a (bindable) [`Expr`] into a [`CompiledExpr`] — a tree
//! of *typed kernels* that evaluate directly over the typed column vectors
//! of a [`ColumnarBatch`]. All name resolution, type dispatch and constant
//! folding happen once at compile time; per-batch evaluation is tight loops
//! over `i64`/`f64`/`bool`/dictionary-code slices with no per-row
//! [`Value`](sa_storage::Value) allocation or operator-enum dispatch.
//!
//! Semantics are **bit-identical to the row interpreter** ([`crate::eval()`]):
//!
//! * SQL three-valued logic — `NULL` poisons arithmetic and comparisons,
//!   `AND`/`OR`/`NOT` are Kleene — carried by per-column validity vectors;
//! * `Int op Int` stays in wrapping `i64` arithmetic (and exact `i64`
//!   comparison); any float operand promotes the whole operation to `f64`,
//!   exactly like [`crate::eval()`]'s value-level promotion;
//! * integer division by zero is the one *runtime* error an already-bound
//!   expression can raise. The row interpreter raises it for the first row
//!   that actually evaluates the division — in particular, a short-circuited
//!   `AND`/`OR` operand never raises. Kernels carry a per-row error mask
//!   that `AND`/`OR` clear on short-circuited rows, so batch evaluation
//!   errors for exactly the rows the row interpreter would have.
//!
//! Batch entry points: [`CompiledExpr::eval_mask`] (filter selection),
//! [`CompiledExpr::eval_f64`] (numeric aggregate inputs) and
//! [`CompiledExpr::eval_column`] (projection).

use std::sync::Arc;

use sa_storage::{ColumnData, ColumnVec, ColumnarBatch, DataType, Schema};

use crate::ast::{BinOp, Expr, UnOp};
use crate::error::ExprError;
use crate::eval::bind;
use crate::Result;

/// Arithmetic operators on numeric kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// Comparison operators on typed kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CmpOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

impl CmpOp {
    fn of(op: BinOp) -> CmpOp {
        match op {
            BinOp::Eq => CmpOp::Eq,
            BinOp::NotEq => CmpOp::NotEq,
            BinOp::Lt => CmpOp::Lt,
            BinOp::LtEq => CmpOp::LtEq,
            BinOp::Gt => CmpOp::Gt,
            BinOp::GtEq => CmpOp::GtEq,
            _ => unreachable!("comparison op"),
        }
    }

    #[inline]
    fn judge(self, ord: std::cmp::Ordering) -> bool {
        match self {
            CmpOp::Eq => ord.is_eq(),
            CmpOp::NotEq => !ord.is_eq(),
            CmpOp::Lt => ord.is_lt(),
            CmpOp::LtEq => ord.is_le(),
            CmpOp::Gt => ord.is_gt(),
            CmpOp::GtEq => ord.is_ge(),
        }
    }
}

/// Integer-typed kernel (evaluates to `i64` per row).
#[derive(Debug, Clone)]
enum IntK {
    Col(usize),
    Const(i64),
    Bin(ArithOp, Box<IntK>, Box<IntK>),
    Neg(Box<IntK>),
}

/// Float-typed kernel (evaluates to `f64` per row). Integer subtrees are
/// widened via [`FloatK::FromInt`]; `Int ÷ Int` lives here ([`FloatK::DivInt`],
/// the one kernel with a runtime error mask).
#[derive(Debug, Clone)]
enum FloatK {
    Col(usize),
    Const(f64),
    FromInt(Box<IntK>),
    Bin(ArithOp, Box<FloatK>, Box<FloatK>),
    DivInt(Box<IntK>, Box<IntK>),
    Neg(Box<FloatK>),
}

/// Numeric kernel: statically int- or float-typed.
#[derive(Debug, Clone)]
enum NumK {
    Int(IntK),
    Float(FloatK),
}

/// String-typed kernel.
#[derive(Debug, Clone)]
enum StrK {
    Col(usize),
    Const(Arc<str>),
}

/// Boolean-typed kernel (three-valued).
#[derive(Debug, Clone)]
enum BoolK {
    Col(usize),
    Const(bool),
    /// A statically-`NULL` boolean (e.g. a comparison against the `NULL`
    /// literal).
    ConstNull,
    CmpInt(CmpOp, Box<IntK>, Box<IntK>),
    CmpFloat(CmpOp, Box<FloatK>, Box<FloatK>),
    CmpStr(CmpOp, StrK, StrK),
    CmpBool(CmpOp, Box<BoolK>, Box<BoolK>),
    /// A statically-`NULL` boolean whose discarded comparison operands may
    /// raise integer division by zero (see [`Kernel::NullGuarded`]).
    NullGuarded(Vec<Kernel>),
    And(Box<BoolK>, Box<BoolK>),
    Or(Box<BoolK>, Box<BoolK>),
    Not(Box<BoolK>),
}

/// The typed root of a compiled expression.
#[derive(Debug, Clone)]
enum Kernel {
    Num(NumK),
    Bool(BoolK),
    Str(StrK),
    /// The untyped `NULL` literal (and expressions folded to it whose
    /// discarded operands cannot raise runtime errors).
    Null,
    /// A statically-`NULL` expression whose discarded operands may raise
    /// integer division by zero (`NULL + 6/a`, `6/a = NULL`): the row
    /// interpreter evaluates both operands *before* the null check, so the
    /// guards must still be evaluated for their error masks.
    NullGuarded(Vec<Kernel>),
}

/// A type-resolved, constant-folded expression evaluable over
/// [`ColumnarBatch`]es. Produced by [`compile`]; plain data
/// (`Clone + Send + Sync`).
#[derive(Debug, Clone)]
pub struct CompiledExpr {
    kernel: Kernel,
}

/// Compile `expr` against `schema`: bind names, resolve types, fold
/// constants, and build typed column kernels. The compiled form evaluates
/// over any batch whose columns are laid out like `schema`.
pub fn compile(expr: &Expr, schema: &Schema) -> Result<CompiledExpr> {
    let bound = bind(expr, schema)?;
    let kernel = compile_kernel(&bound, schema)?;
    Ok(CompiledExpr { kernel })
}

fn type_err(msg: impl Into<String>) -> ExprError {
    ExprError::TypeError {
        message: msg.into(),
    }
}

fn compile_kernel(expr: &Expr, schema: &Schema) -> Result<Kernel> {
    Ok(match expr {
        Expr::Column(name) => return Err(ExprError::Unbound { name: name.clone() }),
        Expr::BoundColumn { index, .. } => match schema.field(*index).data_type {
            DataType::Int => Kernel::Num(NumK::Int(IntK::Col(*index))),
            DataType::Float => Kernel::Num(NumK::Float(FloatK::Col(*index))),
            DataType::Bool => Kernel::Bool(BoolK::Col(*index)),
            DataType::Str => Kernel::Str(StrK::Col(*index)),
        },
        Expr::Literal(v) => match v {
            sa_storage::Value::Null => Kernel::Null,
            sa_storage::Value::Bool(b) => Kernel::Bool(BoolK::Const(*b)),
            sa_storage::Value::Int(i) => Kernel::Num(NumK::Int(IntK::Const(*i))),
            sa_storage::Value::Float(f) => Kernel::Num(NumK::Float(FloatK::Const(*f))),
            sa_storage::Value::Str(s) => Kernel::Str(StrK::Const(s.clone())),
        },
        Expr::Binary { op, left, right } => {
            let l = compile_kernel(left, schema)?;
            let r = compile_kernel(right, schema)?;
            compile_binary(*op, l, r)?
        }
        Expr::Unary { op, expr } => {
            let k = compile_kernel(expr, schema)?;
            match (op, k) {
                (_, k @ (Kernel::Null | Kernel::NullGuarded(_))) => guarded_null(vec![k]),
                (UnOp::Neg, Kernel::Num(NumK::Int(k))) => {
                    Kernel::Num(NumK::Int(fold_int(IntK::Neg(Box::new(k)))))
                }
                (UnOp::Neg, Kernel::Num(NumK::Float(k))) => {
                    Kernel::Num(NumK::Float(fold_float(FloatK::Neg(Box::new(k)))))
                }
                (UnOp::Not, Kernel::Bool(k)) => Kernel::Bool(fold_bool(BoolK::Not(Box::new(k)))),
                (op, k) => return Err(type_err(format!("{op:?} applied to {}", kind_name(&k)))),
            }
        }
    })
}

fn kind_name(k: &Kernel) -> &'static str {
    match k {
        Kernel::Num(NumK::Int(_)) => "Int",
        Kernel::Num(NumK::Float(_)) => "Float",
        Kernel::Bool(_) => "Bool",
        Kernel::Str(_) => "Str",
        Kernel::Null | Kernel::NullGuarded(_) => "NULL",
    }
}

/// Can evaluating this kernel raise a runtime error? Only `Int ÷ Int`
/// ([`FloatK::DivInt`]) can, so this is a recursive scan for it.
fn kernel_can_err(k: &Kernel) -> bool {
    fn float_can_err(k: &FloatK) -> bool {
        match k {
            FloatK::DivInt(_, _) => true,
            FloatK::Bin(_, a, b) => float_can_err(a) || float_can_err(b),
            FloatK::Neg(a) => float_can_err(a),
            // IntK cannot contain a division (Int ÷ Int compiles to
            // FloatK::DivInt), so FromInt subtrees are error-free.
            FloatK::Col(_) | FloatK::Const(_) | FloatK::FromInt(_) => false,
        }
    }
    fn bool_can_err(k: &BoolK) -> bool {
        match k {
            BoolK::CmpFloat(_, a, b) => float_can_err(a) || float_can_err(b),
            BoolK::CmpBool(_, a, b) | BoolK::And(a, b) | BoolK::Or(a, b) => {
                bool_can_err(a) || bool_can_err(b)
            }
            BoolK::Not(a) => bool_can_err(a),
            BoolK::NullGuarded(g) => g.iter().any(kernel_can_err),
            BoolK::Col(_) | BoolK::Const(_) | BoolK::ConstNull => false,
            BoolK::CmpInt(_, _, _) | BoolK::CmpStr(_, _, _) => false,
        }
    }
    match k {
        Kernel::Num(NumK::Float(f)) => float_can_err(f),
        Kernel::Num(NumK::Int(_)) => false,
        Kernel::Bool(b) => bool_can_err(b),
        Kernel::Str(_) => false,
        Kernel::Null => false,
        Kernel::NullGuarded(g) => g.iter().any(kernel_can_err),
    }
}

/// The NULL result of an operation over `sides` (one of them null-typed):
/// plain `Null` when no discarded operand can error, else a guarded null
/// that keeps the erroring operands alive for their div-by-zero masks —
/// exactly what the row interpreter does by evaluating operands before the
/// null check. Whole kernels are kept as guards (not just their division
/// subtrees) so any `AND`/`OR` short-circuiting *inside* an operand keeps
/// masking exactly as it would have.
fn guarded_null(sides: Vec<Kernel>) -> Kernel {
    let guards: Vec<Kernel> = sides.into_iter().filter(kernel_can_err).collect();
    if guards.is_empty() {
        Kernel::Null
    } else {
        Kernel::NullGuarded(guards)
    }
}

/// [`guarded_null`] typed as a boolean kernel (comparison results).
fn guarded_null_bool(sides: Vec<Kernel>) -> BoolK {
    match guarded_null(sides) {
        Kernel::Null => BoolK::ConstNull,
        Kernel::NullGuarded(g) => BoolK::NullGuarded(g),
        _ => unreachable!("guarded_null returns a null kernel"),
    }
}

fn compile_binary(op: BinOp, l: Kernel, r: Kernel) -> Result<Kernel> {
    use Kernel as K;
    if op.is_arithmetic() {
        return Ok(match (l, r) {
            // NULL poisons arithmetic — but discarded operands keep their
            // div-by-zero potential (the interpreter evaluates them first).
            (l @ (K::Null | K::NullGuarded(_)), r) | (l, r @ (K::Null | K::NullGuarded(_))) => {
                guarded_null(vec![l, r])
            }
            (K::Num(NumK::Int(a)), K::Num(NumK::Int(b))) => {
                if op == BinOp::Div {
                    K::Num(NumK::Float(fold_float(FloatK::DivInt(
                        Box::new(a),
                        Box::new(b),
                    ))))
                } else {
                    K::Num(NumK::Int(fold_int(IntK::Bin(
                        arith(op),
                        Box::new(a),
                        Box::new(b),
                    ))))
                }
            }
            (K::Num(a), K::Num(b)) => K::Num(NumK::Float(fold_float(FloatK::Bin(
                arith(op),
                Box::new(widen(a)),
                Box::new(widen(b)),
            )))),
            (l, r) => {
                return Err(type_err(format!(
                    "{} {} {}",
                    kind_name(&l),
                    op.symbol(),
                    kind_name(&r)
                )))
            }
        });
    }
    if op.is_comparison() {
        let cmp = CmpOp::of(op);
        return Ok(match (l, r) {
            (l @ (K::Null | K::NullGuarded(_)), r) | (l, r @ (K::Null | K::NullGuarded(_))) => {
                K::Bool(guarded_null_bool(vec![l, r]))
            }
            (K::Num(NumK::Int(a)), K::Num(NumK::Int(b))) => {
                K::Bool(fold_bool(BoolK::CmpInt(cmp, Box::new(a), Box::new(b))))
            }
            (K::Num(a), K::Num(b)) => K::Bool(fold_bool(BoolK::CmpFloat(
                cmp,
                Box::new(widen(a)),
                Box::new(widen(b)),
            ))),
            (K::Str(a), K::Str(b)) => K::Bool(fold_bool(BoolK::CmpStr(cmp, a, b))),
            (K::Bool(a), K::Bool(b)) => {
                K::Bool(fold_bool(BoolK::CmpBool(cmp, Box::new(a), Box::new(b))))
            }
            (l, r) => {
                return Err(type_err(format!(
                    "{} {} {}",
                    kind_name(&l),
                    op.symbol(),
                    kind_name(&r)
                )))
            }
        });
    }
    // Logical.
    let as_bool = |k: Kernel| -> Result<BoolK> {
        match k {
            K::Bool(b) => Ok(b),
            K::Null => Ok(BoolK::ConstNull),
            K::NullGuarded(g) => Ok(BoolK::NullGuarded(g)),
            other => Err(type_err(format!("{} {} …", kind_name(&other), op.symbol()))),
        }
    };
    let (a, b) = (as_bool(l)?, as_bool(r)?);
    Ok(K::Bool(fold_bool(match op {
        BinOp::And => BoolK::And(Box::new(a), Box::new(b)),
        BinOp::Or => BoolK::Or(Box::new(a), Box::new(b)),
        _ => unreachable!("logical op"),
    })))
}

fn arith(op: BinOp) -> ArithOp {
    match op {
        BinOp::Add => ArithOp::Add,
        BinOp::Sub => ArithOp::Sub,
        BinOp::Mul => ArithOp::Mul,
        BinOp::Div => ArithOp::Div,
        _ => unreachable!("arithmetic op"),
    }
}

fn widen(k: NumK) -> FloatK {
    match k {
        NumK::Float(f) => f,
        NumK::Int(IntK::Const(i)) => FloatK::Const(i as f64),
        NumK::Int(i) => FloatK::FromInt(Box::new(i)),
    }
}

// ---------------------------------------------------------------------------
// Constant folding. Folds are exact replays of the row interpreter's scalar
// arithmetic (wrapping i64, f64), so a folded kernel cannot diverge from the
// unfolded one. `Int ÷ 0` is deliberately NOT folded: the row interpreter
// raises it per evaluated row, and short-circuiting may skip those rows.
// ---------------------------------------------------------------------------

fn fold_int(k: IntK) -> IntK {
    match &k {
        IntK::Bin(op, a, b) => {
            if let (IntK::Const(a), IntK::Const(b)) = (a.as_ref(), b.as_ref()) {
                return IntK::Const(match op {
                    ArithOp::Add => a.wrapping_add(*b),
                    ArithOp::Sub => a.wrapping_sub(*b),
                    ArithOp::Mul => a.wrapping_mul(*b),
                    ArithOp::Div => unreachable!("Int ÷ Int compiles to FloatK::DivInt"),
                });
            }
            k
        }
        IntK::Neg(a) => {
            if let IntK::Const(a) = a.as_ref() {
                return IntK::Const(a.wrapping_neg());
            }
            k
        }
        _ => k,
    }
}

fn fold_float(k: FloatK) -> FloatK {
    match &k {
        FloatK::Bin(op, a, b) => {
            if let (FloatK::Const(a), FloatK::Const(b)) = (a.as_ref(), b.as_ref()) {
                return FloatK::Const(match op {
                    ArithOp::Add => a + b,
                    ArithOp::Sub => a - b,
                    ArithOp::Mul => a * b,
                    ArithOp::Div => a / b,
                });
            }
            k
        }
        FloatK::DivInt(a, b) => {
            if let (IntK::Const(a), IntK::Const(b)) = (a.as_ref(), b.as_ref()) {
                if *b != 0 {
                    return FloatK::Const(*a as f64 / *b as f64);
                }
            }
            k
        }
        FloatK::Neg(a) => {
            if let FloatK::Const(a) = a.as_ref() {
                return FloatK::Const(-a);
            }
            k
        }
        FloatK::FromInt(a) => {
            if let IntK::Const(a) = a.as_ref() {
                return FloatK::Const(*a as f64);
            }
            k
        }
        _ => k,
    }
}

fn fold_bool(k: BoolK) -> BoolK {
    match &k {
        BoolK::CmpInt(op, a, b) => {
            if let (IntK::Const(a), IntK::Const(b)) = (a.as_ref(), b.as_ref()) {
                return BoolK::Const(op.judge(a.cmp(b)));
            }
        }
        BoolK::CmpFloat(op, a, b) => {
            if let (FloatK::Const(a), FloatK::Const(b)) = (a.as_ref(), b.as_ref()) {
                return BoolK::Const(op.judge(cmp_f64(*a, *b)));
            }
        }
        BoolK::CmpStr(op, StrK::Const(a), StrK::Const(b)) => {
            return BoolK::Const(op.judge(a.cmp(b)));
        }
        BoolK::CmpBool(op, a, b) => {
            if let (BoolK::Const(a), BoolK::Const(b)) = (a.as_ref(), b.as_ref()) {
                return BoolK::Const(op.judge(a.cmp(b)));
            }
        }
        // Only a *left* constant may simplify AND/OR: the row interpreter
        // always evaluates the left operand (so its errors always surface)
        // and skips the right only on a definite left verdict.
        BoolK::And(a, b) => match a.as_ref() {
            BoolK::Const(false) => return BoolK::Const(false),
            BoolK::Const(true) => return b.as_ref().clone(),
            _ => {}
        },
        BoolK::Or(a, b) => match a.as_ref() {
            BoolK::Const(true) => return BoolK::Const(true),
            BoolK::Const(false) => return b.as_ref().clone(),
            _ => {}
        },
        BoolK::Not(a) => match a.as_ref() {
            BoolK::Const(v) => return BoolK::Const(!v),
            BoolK::ConstNull => return BoolK::ConstNull,
            _ => {}
        },
        _ => {}
    }
    k
}

fn cmp_f64(a: f64, b: f64) -> std::cmp::Ordering {
    // Mirrors Value::total_cmp's float order (NaN last, -0.0 == 0.0).
    use std::cmp::Ordering;
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => {
            if a == b {
                Ordering::Equal
            } else {
                a.partial_cmp(&b).expect("non-NaN floats compare")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Batch evaluation.
// ---------------------------------------------------------------------------

/// A kernel result's values: a broadcast constant, an owned vector (a
/// computed intermediate) or a **borrowed slice of the batch's own
/// storage** — a bare column reference lends the batch's data instead of
/// copying it, so `col(a) > 0 AND col(a) < 10` never memcpys column `a`.
/// Binary kernels specialize their loops on the shape, so `col + 1.0`
/// never materializes the constant side either.
enum Vals<'a, T> {
    Const(T),
    Vec(Vec<T>),
    Slice(&'a [T]),
}

/// A validity mask borrowed from the batch (a column's own bitmap) or
/// owned (computed by a kernel); `None` = all rows valid.
type Validity<'a> = Option<std::borrow::Cow<'a, [bool]>>;

impl<'a, T: Copy> Vals<'a, T> {
    #[inline]
    fn at(&self, i: usize) -> T {
        match self {
            Vals::Const(c) => *c,
            Vals::Vec(v) => v[i],
            Vals::Slice(s) => s[i],
        }
    }

    /// The broadcast constant, if this is one.
    #[inline]
    fn as_const(&self) -> Option<T> {
        match self {
            Vals::Const(c) => Some(*c),
            _ => None,
        }
    }

    /// The per-row values (panics on `Const` — callers check `as_const`).
    #[inline]
    fn slice(&self) -> &[T] {
        match self {
            Vals::Const(_) => unreachable!("as_const checked"),
            Vals::Vec(v) => v,
            Vals::Slice(s) => s,
        }
    }

    fn materialize(self, rows: usize) -> Vec<T> {
        match self {
            Vals::Const(c) => vec![c; rows],
            Vals::Vec(v) => v,
            Vals::Slice(s) => s.to_vec(),
        }
    }
}

/// A numeric/boolean kernel's batch result: values, validity (`None` = all
/// valid) and the rows whose evaluation raised integer division by zero.
struct Evaled<'a, T> {
    vals: Vals<'a, T>,
    validity: Validity<'a>,
    div0: Option<Vec<bool>>,
}

impl<T: Copy> Evaled<'_, T> {
    fn constant(c: T) -> Evaled<'static, T> {
        Evaled {
            vals: Vals::Const(c),
            validity: None,
            div0: None,
        }
    }

    #[inline]
    fn is_valid(&self, i: usize) -> bool {
        self.validity.as_deref().is_none_or(|v| v[i])
    }
}

/// Union of two optional row masks.
fn union_masks(a: Option<Vec<bool>>, b: Option<Vec<bool>>) -> Option<Vec<bool>> {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(mut a), Some(b)) => {
            for (x, y) in a.iter_mut().zip(&b) {
                *x |= y;
            }
            Some(a)
        }
    }
}

/// Intersection of validity: invalid if either side is.
fn merge_validity<'a>(a: Validity<'a>, b: Validity<'a>) -> Validity<'a> {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(a), Some(b)) => {
            let mut a = a.into_owned();
            for (x, y) in a.iter_mut().zip(b.iter()) {
                *x &= y;
            }
            Some(std::borrow::Cow::Owned(a))
        }
    }
}

fn expect_col<'a>(batch: &'a ColumnarBatch, idx: usize, want: &str) -> Result<&'a ColumnVec> {
    let col = batch
        .columns()
        .get(idx)
        .ok_or_else(|| type_err(format!("batch has no column {idx}")))?;
    // The type was resolved against the schema at compile time; a mismatch
    // here means the producing operator broke the schema contract (e.g. a
    // projection of a NULL-typed expression) — surface it as a type error,
    // exactly where the row interpreter would raise one.
    let got = col.data_type();
    let ok = matches!(
        (want, got),
        ("Int", DataType::Int)
            | ("Float", DataType::Float)
            | ("Bool", DataType::Bool)
            | ("Str", DataType::Str)
    );
    if !ok {
        return Err(type_err(format!("column {idx} is {got}, expected {want}")));
    }
    Ok(col)
}

fn eval_int<'a>(k: &IntK, batch: &'a ColumnarBatch) -> Result<Evaled<'a, i64>> {
    Ok(match k {
        IntK::Const(c) => Evaled::<i64>::constant(*c),
        IntK::Col(i) => {
            let col = expect_col(batch, *i, "Int")?;
            let ColumnData::Int(data) = &col.data else {
                unreachable!("type checked");
            };
            Evaled {
                vals: Vals::Slice(data),
                validity: col.validity.as_deref().map(std::borrow::Cow::Borrowed),
                div0: None,
            }
        }
        IntK::Bin(op, a, b) => {
            let a = eval_int(a, batch)?;
            let b = eval_int(b, batch)?;
            let f = match op {
                ArithOp::Add => i64::wrapping_add,
                ArithOp::Sub => i64::wrapping_sub,
                ArithOp::Mul => i64::wrapping_mul,
                ArithOp::Div => unreachable!("Int ÷ Int compiles to FloatK::DivInt"),
            };
            let vals = zip_vals(&a.vals, &b.vals, f);
            Evaled {
                vals,
                validity: merge_validity(a.validity, b.validity),
                div0: union_masks(a.div0, b.div0),
            }
        }
        IntK::Neg(a) => {
            let a = eval_int(a, batch)?;
            let vals = map_vals(&a.vals, i64::wrapping_neg);
            Evaled {
                vals,
                validity: a.validity,
                div0: a.div0,
            }
        }
    })
}

fn eval_float<'a>(k: &FloatK, batch: &'a ColumnarBatch) -> Result<Evaled<'a, f64>> {
    Ok(match k {
        FloatK::Const(c) => Evaled::<f64>::constant(*c),
        FloatK::Col(i) => {
            let col = expect_col(batch, *i, "Float")?;
            let ColumnData::Float(data) = &col.data else {
                unreachable!("type checked");
            };
            Evaled {
                vals: Vals::Slice(data),
                validity: col.validity.as_deref().map(std::borrow::Cow::Borrowed),
                div0: None,
            }
        }
        FloatK::FromInt(a) => {
            let a = eval_int(a, batch)?;
            let vals = match a.vals.as_const() {
                Some(c) => Vals::Const(c as f64),
                None => Vals::Vec(a.vals.slice().iter().map(|&x| x as f64).collect()),
            };
            Evaled {
                vals,
                validity: a.validity,
                div0: a.div0,
            }
        }
        FloatK::Bin(op, a, b) => {
            let a = eval_float(a, batch)?;
            let b = eval_float(b, batch)?;
            let f: fn(f64, f64) -> f64 = match op {
                ArithOp::Add => |x, y| x + y,
                ArithOp::Sub => |x, y| x - y,
                ArithOp::Mul => |x, y| x * y,
                ArithOp::Div => |x, y| x / y,
            };
            let vals = zip_vals(&a.vals, &b.vals, f);
            Evaled {
                vals,
                validity: merge_validity(a.validity, b.validity),
                div0: union_masks(a.div0, b.div0),
            }
        }
        FloatK::DivInt(a, b) => {
            let a = eval_int(a, batch)?;
            let b = eval_int(b, batch)?;
            let rows = batch.rows();
            let mut out = Vec::with_capacity(rows);
            let mut div0: Option<Vec<bool>> = None;
            for i in 0..rows {
                let d = b.vals.at(i);
                if d == 0 {
                    // Only rows where BOTH operands are non-null actually
                    // reach the division in the row interpreter (NULL
                    // poisons first and returns before dividing).
                    if a.is_valid(i) && b.is_valid(i) {
                        div0.get_or_insert_with(|| vec![false; rows])[i] = true;
                    }
                    out.push(0.0);
                } else {
                    out.push(a.vals.at(i) as f64 / d as f64);
                }
            }
            Evaled {
                vals: Vals::Vec(out),
                validity: merge_validity(a.validity, b.validity),
                div0: union_masks(union_masks(a.div0, b.div0), div0),
            }
        }
        FloatK::Neg(a) => {
            let a = eval_float(a, batch)?;
            let vals = map_vals(&a.vals, |x| -x);
            Evaled {
                vals,
                validity: a.validity,
                div0: a.div0,
            }
        }
    })
}

#[inline]
fn zip_vals<'a, T: Copy>(a: &Vals<'a, T>, b: &Vals<'a, T>, f: impl Fn(T, T) -> T) -> Vals<'a, T> {
    match (a.as_const(), b.as_const()) {
        (Some(x), Some(y)) => Vals::Const(f(x, y)),
        (None, Some(y)) => Vals::Vec(a.slice().iter().map(|&x| f(x, y)).collect()),
        (Some(x), None) => Vals::Vec(b.slice().iter().map(|&y| f(x, y)).collect()),
        (None, None) => Vals::Vec(
            a.slice()
                .iter()
                .zip(b.slice())
                .map(|(&x, &y)| f(x, y))
                .collect(),
        ),
    }
}

#[inline]
fn map_vals<'a, T: Copy>(a: &Vals<'a, T>, f: impl Fn(T) -> T) -> Vals<'a, T> {
    match a.as_const() {
        Some(x) => Vals::Const(f(x)),
        None => Vals::Vec(a.slice().iter().map(|&x| f(x)).collect()),
    }
}

/// Evaluate a comparison into a three-valued boolean result.
fn eval_cmp<'a, T: Copy>(
    op: CmpOp,
    a: Evaled<'a, T>,
    b: Evaled<'a, T>,
    rows: usize,
    cmp: impl Fn(T, T) -> std::cmp::Ordering,
) -> Evaled<'a, bool> {
    let vals = match (a.vals.as_const(), b.vals.as_const()) {
        (Some(x), Some(y)) => Vals::Const(op.judge(cmp(x, y))),
        _ => {
            let mut out = Vec::with_capacity(rows);
            for i in 0..rows {
                out.push(op.judge(cmp(a.vals.at(i), b.vals.at(i))));
            }
            Vals::Vec(out)
        }
    };
    Evaled {
        vals,
        validity: merge_validity(a.validity, b.validity),
        div0: union_masks(a.div0, b.div0),
    }
}

/// Evaluate guard kernels for their error masks only (the union of their
/// div-by-zero rows) — the runtime half of [`Kernel::NullGuarded`].
fn eval_guards(guards: &[Kernel], batch: &ColumnarBatch) -> Result<Option<Vec<bool>>> {
    let mut err: Option<Vec<bool>> = None;
    for g in guards {
        let div0 = match g {
            Kernel::Num(NumK::Int(_)) | Kernel::Str(_) | Kernel::Null => None,
            Kernel::Num(NumK::Float(k)) => eval_float(k, batch)?.div0,
            Kernel::Bool(k) => eval_bool(k, batch)?.div0,
            Kernel::NullGuarded(g) => eval_guards(g, batch)?,
        };
        err = union_masks(err, div0);
    }
    Ok(err)
}

fn eval_bool<'a>(k: &BoolK, batch: &'a ColumnarBatch) -> Result<Evaled<'a, bool>> {
    let rows = batch.rows();
    Ok(match k {
        BoolK::Const(c) => Evaled::<bool>::constant(*c),
        BoolK::ConstNull => Evaled {
            vals: Vals::Const(false),
            validity: Some(std::borrow::Cow::Owned(vec![false; rows])),
            div0: None,
        },
        BoolK::NullGuarded(guards) => Evaled {
            vals: Vals::Const(false),
            validity: Some(std::borrow::Cow::Owned(vec![false; rows])),
            div0: eval_guards(guards, batch)?,
        },
        BoolK::Col(i) => {
            let col = expect_col(batch, *i, "Bool")?;
            let ColumnData::Bool(data) = &col.data else {
                unreachable!("type checked");
            };
            Evaled {
                vals: Vals::Slice(data),
                validity: col.validity.as_deref().map(std::borrow::Cow::Borrowed),
                div0: None,
            }
        }
        BoolK::CmpInt(op, a, b) => {
            let (a, b) = (eval_int(a, batch)?, eval_int(b, batch)?);
            eval_cmp(*op, a, b, rows, |x: i64, y: i64| x.cmp(&y))
        }
        BoolK::CmpFloat(op, a, b) => {
            let (a, b) = (eval_float(a, batch)?, eval_float(b, batch)?);
            eval_cmp(*op, a, b, rows, cmp_f64)
        }
        BoolK::CmpBool(op, a, b) => {
            let (a, b) = (eval_bool(a, batch)?, eval_bool(b, batch)?);
            eval_cmp(*op, a, b, rows, |x: bool, y: bool| x.cmp(&y))
        }
        BoolK::CmpStr(op, a, b) => eval_cmp_str(*op, a, b, batch)?,
        BoolK::And(a, b) => {
            let a = eval_bool(a, batch)?;
            let b = eval_bool(b, batch)?;
            let mut vals = Vec::with_capacity(rows);
            let mut validity: Option<Vec<bool>> = None;
            for i in 0..rows {
                let (av, an) = (a.vals.at(i), !a.is_valid(i));
                let (bv, bn) = (b.vals.at(i), !b.is_valid(i));
                // Kleene AND: false dominates; NULL beats true.
                let (v, null) = if (!an && !av) || (!bn && !bv) {
                    (false, false)
                } else if an || bn {
                    (false, true)
                } else {
                    (true, false)
                };
                vals.push(v);
                if null {
                    validity.get_or_insert_with(|| vec![true; rows])[i] = false;
                }
            }
            // Short-circuit-faithful errors: the left operand's errors
            // always count; the right's only on rows the row interpreter
            // would have evaluated it (left not definite-false).
            let b_err = mask_shortcircuit(b.div0, |i| a.is_valid(i) && !a.vals.at(i));
            Evaled {
                vals: Vals::Vec(vals),
                validity: validity.map(std::borrow::Cow::Owned),
                div0: union_masks(a.div0, b_err),
            }
        }
        BoolK::Or(a, b) => {
            let a = eval_bool(a, batch)?;
            let b = eval_bool(b, batch)?;
            let mut vals = Vec::with_capacity(rows);
            let mut validity: Option<Vec<bool>> = None;
            for i in 0..rows {
                let (av, an) = (a.vals.at(i), !a.is_valid(i));
                let (bv, bn) = (b.vals.at(i), !b.is_valid(i));
                // Kleene OR: true dominates; NULL beats false.
                let (v, null) = if (!an && av) || (!bn && bv) {
                    (true, false)
                } else if an || bn {
                    (false, true)
                } else {
                    (false, false)
                };
                vals.push(v);
                if null {
                    validity.get_or_insert_with(|| vec![true; rows])[i] = false;
                }
            }
            let b_err = mask_shortcircuit(b.div0, |i| a.is_valid(i) && a.vals.at(i));
            Evaled {
                vals: Vals::Vec(vals),
                validity: validity.map(std::borrow::Cow::Owned),
                div0: union_masks(a.div0, b_err),
            }
        }
        BoolK::Not(a) => {
            let a = eval_bool(a, batch)?;
            let vals = map_vals(&a.vals, |x| !x);
            Evaled {
                vals,
                validity: a.validity,
                div0: a.div0,
            }
        }
    })
}

/// Clear error-mask rows where the row interpreter would have
/// short-circuited past the operand (`skipped(i)` = true).
fn mask_shortcircuit(err: Option<Vec<bool>>, skipped: impl Fn(usize) -> bool) -> Option<Vec<bool>> {
    let mut err = err?;
    let mut any = false;
    for (i, e) in err.iter_mut().enumerate() {
        if *e && skipped(i) {
            *e = false;
        }
        any |= *e;
    }
    if any {
        Some(err)
    } else {
        None
    }
}

/// A string operand resolved against a batch: dictionary + codes, or a
/// constant.
enum StrVals<'a> {
    Col {
        dict: &'a [Arc<str>],
        codes: &'a [u32],
        validity: Option<&'a [bool]>,
    },
    /// A constant operand (one cheap `Arc` clone per batch, so the variant
    /// borrows only from the batch, not the kernel).
    Const(Arc<str>),
}

impl StrVals<'_> {
    #[inline]
    fn at(&self, i: usize) -> &str {
        match self {
            StrVals::Col { dict, codes, .. } => &dict[codes[i] as usize],
            StrVals::Const(s) => s,
        }
    }

    #[inline]
    fn is_valid(&self, i: usize) -> bool {
        match self {
            StrVals::Col { validity, .. } => validity.is_none_or(|v| v[i]),
            StrVals::Const(_) => true,
        }
    }
}

fn str_vals<'a>(k: &StrK, batch: &'a ColumnarBatch) -> Result<StrVals<'a>> {
    Ok(match k {
        StrK::Const(s) => StrVals::Const(s.clone()),
        StrK::Col(i) => {
            let col = expect_col(batch, *i, "Str")?;
            let ColumnData::Str { dict, codes } = &col.data else {
                unreachable!("type checked");
            };
            StrVals::Col {
                dict,
                codes,
                validity: col.validity.as_deref(),
            }
        }
    })
}

fn eval_cmp_str<'a>(
    op: CmpOp,
    a: &StrK,
    b: &StrK,
    batch: &'a ColumnarBatch,
) -> Result<Evaled<'a, bool>> {
    let rows = batch.rows();
    let a = str_vals(a, batch)?;
    let b = str_vals(b, batch)?;
    // Fast path: column vs constant — decide once per dictionary entry,
    // then map codes (the dictionary is tiny next to the batch).
    if let (
        StrVals::Col {
            dict,
            codes,
            validity,
        },
        StrVals::Const(c),
    ) = (&a, &b)
    {
        let table: Vec<bool> = dict
            .iter()
            .map(|e| op.judge(e.as_ref().cmp(c.as_ref())))
            .collect();
        let vals: Vec<bool> = codes.iter().map(|&code| table[code as usize]).collect();
        return Ok(Evaled {
            vals: Vals::Vec(vals),
            validity: validity.map(std::borrow::Cow::Borrowed),
            div0: None,
        });
    }
    let mut vals = Vec::with_capacity(rows);
    let mut validity: Option<Vec<bool>> = None;
    for i in 0..rows {
        if !a.is_valid(i) || !b.is_valid(i) {
            validity.get_or_insert_with(|| vec![true; rows])[i] = false;
            vals.push(false);
        } else {
            vals.push(op.judge(a.at(i).cmp(b.at(i))));
        }
    }
    Ok(Evaled {
        vals: Vals::Vec(vals),
        validity: validity.map(std::borrow::Cow::Owned),
        div0: None,
    })
}

// ---------------------------------------------------------------------------
// Public evaluation surface.
// ---------------------------------------------------------------------------

impl CompiledExpr {
    /// Static result type (`None` for the bare `NULL` literal and
    /// expressions folded to it), matching [`crate::data_type`].
    pub fn data_type(&self) -> Option<DataType> {
        match &self.kernel {
            Kernel::Num(NumK::Int(_)) => Some(DataType::Int),
            Kernel::Num(NumK::Float(_)) => Some(DataType::Float),
            Kernel::Bool(_) => Some(DataType::Bool),
            Kernel::Str(_) => Some(DataType::Str),
            Kernel::Null | Kernel::NullGuarded(_) => None,
        }
    }

    /// The column indices this compiled expression reads, ascending and
    /// deduplicated.
    pub fn columns_used(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.visit_columns(&mut |i| {
            if !out.contains(&i) {
                out.push(i);
            }
        });
        out.sort_unstable();
        out
    }

    /// Rewrite every column index through `map` (old index → new index) —
    /// used when an operator evaluates compiled expressions over a gathered
    /// subset of its input's columns (the fused filter+project path).
    pub fn remap_columns(&mut self, map: &dyn Fn(usize) -> usize) {
        self.map_columns(map);
    }

    /// Evaluate as a selection predicate: `true` per passing row, with SQL
    /// semantics (`NULL` does not pass). Errors if the expression is not
    /// boolean or any non-short-circuited row divides an integer by zero.
    pub fn eval_mask(&self, batch: &ColumnarBatch) -> Result<Vec<bool>> {
        let b = match &self.kernel {
            Kernel::Bool(k) => eval_bool(k, batch)?,
            Kernel::Null => {
                return Ok(vec![false; batch.rows()]);
            }
            Kernel::NullGuarded(guards) => {
                if let Some(errs) = eval_guards(guards, batch)? {
                    if errs.iter().any(|&e| e) {
                        return Err(ExprError::DivisionByZero);
                    }
                }
                return Ok(vec![false; batch.rows()]);
            }
            other => {
                return Err(type_err(format!(
                    "predicate evaluated to non-boolean {}",
                    kind_name(other)
                )))
            }
        };
        if let Some(errs) = &b.div0 {
            if errs.iter().any(|&e| e) {
                return Err(ExprError::DivisionByZero);
            }
        }
        let rows = batch.rows();
        let mut out = b.vals.materialize(rows);
        if let Some(validity) = &b.validity {
            for (o, &v) in out.iter_mut().zip(validity.iter()) {
                *o &= v;
            }
        }
        Ok(out)
    }

    /// Evaluate as a numeric vector (`f64`, ints widened) with validity
    /// (`None` = no nulls) — the batch counterpart of [`crate::eval_f64`].
    pub fn eval_f64(&self, batch: &ColumnarBatch) -> Result<(Vec<f64>, Option<Vec<bool>>)> {
        let rows = batch.rows();
        let e = match &self.kernel {
            Kernel::Num(NumK::Float(k)) => eval_float(k, batch)?,
            Kernel::Num(NumK::Int(k)) => {
                let e = eval_int(k, batch)?;
                let vals = match e.vals.as_const() {
                    Some(c) => Vals::Const(c as f64),
                    None => Vals::Vec(e.vals.slice().iter().map(|&x| x as f64).collect()),
                };
                Evaled {
                    vals,
                    validity: e.validity,
                    div0: e.div0,
                }
            }
            Kernel::Null => {
                return Ok((vec![0.0; rows], Some(vec![false; rows])));
            }
            Kernel::NullGuarded(guards) => {
                if let Some(errs) = eval_guards(guards, batch)? {
                    if errs.iter().any(|&e| e) {
                        return Err(ExprError::DivisionByZero);
                    }
                }
                return Ok((vec![0.0; rows], Some(vec![false; rows])));
            }
            other => {
                return Err(type_err(format!(
                    "expected numeric result, got {}",
                    kind_name(other)
                )))
            }
        };
        if let Some(errs) = &e.div0 {
            if errs.iter().any(|&x| x) {
                return Err(ExprError::DivisionByZero);
            }
        }
        Ok((e.vals.materialize(rows), e.validity.map(|v| v.into_owned())))
    }

    /// Evaluate as an output column (projection). The column's type is the
    /// kernel's static type; a `NULL`-typed expression projects as an
    /// all-null `Float` column (matching the executor's schema default).
    pub fn eval_column(&self, batch: &ColumnarBatch) -> Result<ColumnVec> {
        let rows = batch.rows();
        let check = |div0: &Option<Vec<bool>>| -> Result<()> {
            if let Some(errs) = div0 {
                if errs.iter().any(|&x| x) {
                    return Err(ExprError::DivisionByZero);
                }
            }
            Ok(())
        };
        Ok(match &self.kernel {
            Kernel::Num(NumK::Int(k)) => {
                let e = eval_int(k, batch)?;
                check(&e.div0)?;
                ColumnVec {
                    data: ColumnData::Int(e.vals.materialize(rows)),
                    validity: e.validity.map(|v| v.into_owned()),
                }
            }
            Kernel::Num(NumK::Float(k)) => {
                let e = eval_float(k, batch)?;
                check(&e.div0)?;
                ColumnVec {
                    data: ColumnData::Float(e.vals.materialize(rows)),
                    validity: e.validity.map(|v| v.into_owned()),
                }
            }
            Kernel::Bool(k) => {
                let e = eval_bool(k, batch)?;
                check(&e.div0)?;
                ColumnVec {
                    data: ColumnData::Bool(e.vals.materialize(rows)),
                    validity: e.validity.map(|v| v.into_owned()),
                }
            }
            Kernel::Str(StrK::Col(i)) => expect_col(batch, *i, "Str")?.clone(),
            Kernel::Str(StrK::Const(s)) => ColumnVec {
                data: ColumnData::Str {
                    dict: Arc::new(vec![s.clone()]),
                    codes: vec![0; rows],
                },
                validity: None,
            },
            Kernel::Null => ColumnVec {
                data: ColumnData::Float(vec![0.0; rows]),
                validity: Some(vec![false; rows]),
            },
            Kernel::NullGuarded(guards) => {
                if let Some(errs) = eval_guards(guards, batch)? {
                    if errs.iter().any(|&e| e) {
                        return Err(ExprError::DivisionByZero);
                    }
                }
                ColumnVec {
                    data: ColumnData::Float(vec![0.0; rows]),
                    validity: Some(vec![false; rows]),
                }
            }
        })
    }

    fn visit_columns(&self, f: &mut impl FnMut(usize)) {
        fn num(k: &NumK, f: &mut impl FnMut(usize)) {
            match k {
                NumK::Int(k) => int(k, f),
                NumK::Float(k) => float(k, f),
            }
        }
        fn int(k: &IntK, f: &mut impl FnMut(usize)) {
            match k {
                IntK::Col(i) => f(*i),
                IntK::Const(_) => {}
                IntK::Bin(_, a, b) => {
                    int(a, f);
                    int(b, f);
                }
                IntK::Neg(a) => int(a, f),
            }
        }
        fn float(k: &FloatK, f: &mut impl FnMut(usize)) {
            match k {
                FloatK::Col(i) => f(*i),
                FloatK::Const(_) => {}
                FloatK::FromInt(a) => int(a, f),
                FloatK::Bin(_, a, b) => {
                    float(a, f);
                    float(b, f);
                }
                FloatK::DivInt(a, b) => {
                    int(a, f);
                    int(b, f);
                }
                FloatK::Neg(a) => float(a, f),
            }
        }
        fn st(k: &StrK, f: &mut impl FnMut(usize)) {
            if let StrK::Col(i) = k {
                f(*i)
            }
        }
        fn bool_(k: &BoolK, f: &mut impl FnMut(usize)) {
            match k {
                BoolK::Col(i) => f(*i),
                BoolK::Const(_) | BoolK::ConstNull => {}
                BoolK::CmpInt(_, a, b) => {
                    int(a, f);
                    int(b, f);
                }
                BoolK::CmpFloat(_, a, b) => {
                    float(a, f);
                    float(b, f);
                }
                BoolK::CmpStr(_, a, b) => {
                    st(a, f);
                    st(b, f);
                }
                BoolK::CmpBool(_, a, b) | BoolK::And(a, b) | BoolK::Or(a, b) => {
                    bool_(a, f);
                    bool_(b, f);
                }
                BoolK::Not(a) => bool_(a, f),
                BoolK::NullGuarded(g) => g.iter().for_each(|k| kernel(k, f)),
            }
        }
        fn kernel(k: &Kernel, f: &mut impl FnMut(usize)) {
            match k {
                Kernel::Num(k) => num(k, f),
                Kernel::Bool(k) => bool_(k, f),
                Kernel::Str(k) => st(k, f),
                Kernel::Null => {}
                Kernel::NullGuarded(g) => g.iter().for_each(|k| kernel(k, f)),
            }
        }
        kernel(&self.kernel, f);
    }

    fn map_columns(&mut self, m: &dyn Fn(usize) -> usize) {
        fn num(k: &mut NumK, m: &dyn Fn(usize) -> usize) {
            match k {
                NumK::Int(k) => int(k, m),
                NumK::Float(k) => float(k, m),
            }
        }
        fn int(k: &mut IntK, m: &dyn Fn(usize) -> usize) {
            match k {
                IntK::Col(i) => *i = m(*i),
                IntK::Const(_) => {}
                IntK::Bin(_, a, b) => {
                    int(a, m);
                    int(b, m);
                }
                IntK::Neg(a) => int(a, m),
            }
        }
        fn float(k: &mut FloatK, m: &dyn Fn(usize) -> usize) {
            match k {
                FloatK::Col(i) => *i = m(*i),
                FloatK::Const(_) => {}
                FloatK::FromInt(a) => int(a, m),
                FloatK::Bin(_, a, b) => {
                    float(a, m);
                    float(b, m);
                }
                FloatK::DivInt(a, b) => {
                    int(a, m);
                    int(b, m);
                }
                FloatK::Neg(a) => float(a, m),
            }
        }
        fn st(k: &mut StrK, m: &dyn Fn(usize) -> usize) {
            if let StrK::Col(i) = k {
                *i = m(*i)
            }
        }
        fn bool_(k: &mut BoolK, m: &dyn Fn(usize) -> usize) {
            match k {
                BoolK::Col(i) => *i = m(*i),
                BoolK::Const(_) | BoolK::ConstNull => {}
                BoolK::CmpInt(_, a, b) => {
                    int(a, m);
                    int(b, m);
                }
                BoolK::CmpFloat(_, a, b) => {
                    float(a, m);
                    float(b, m);
                }
                BoolK::CmpStr(_, a, b) => {
                    st(a, m);
                    st(b, m);
                }
                BoolK::CmpBool(_, a, b) | BoolK::And(a, b) | BoolK::Or(a, b) => {
                    bool_(a, m);
                    bool_(b, m);
                }
                BoolK::Not(a) => bool_(a, m),
                BoolK::NullGuarded(g) => g.iter_mut().for_each(|k| kernel(k, m)),
            }
        }
        fn kernel(k: &mut Kernel, m: &dyn Fn(usize) -> usize) {
            match k {
                Kernel::Num(k) => num(k, m),
                Kernel::Bool(k) => bool_(k, m),
                Kernel::Str(k) => st(k, m),
                Kernel::Null => {}
                Kernel::NullGuarded(g) => g.iter_mut().for_each(|k| kernel(k, m)),
            }
        }
        kernel(&mut self.kernel, m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{col, lit};
    use crate::eval::{eval, eval_f64, eval_predicate};
    use sa_storage::{Field, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Float),
            Field::new("s", DataType::Str),
            Field::new("flag", DataType::Bool),
        ])
        .unwrap()
    }

    /// A batch plus its row-wise view, for differential checks.
    fn batch() -> (ColumnarBatch, Vec<Vec<Value>>) {
        let rows = vec![
            vec![
                Value::Int(6),
                Value::Float(0.5),
                Value::str("hi"),
                Value::Bool(true),
            ],
            vec![
                Value::Null,
                Value::Float(2.0),
                Value::str("ho"),
                Value::Null,
            ],
            vec![Value::Int(-3), Value::Null, Value::Null, Value::Bool(false)],
            vec![
                Value::Int(0),
                Value::Float(-0.0),
                Value::str("hi"),
                Value::Bool(true),
            ],
        ];
        let s = schema();
        let cols = (0..4)
            .map(|c| {
                ColumnVec::from_values(s.field(c).data_type, rows.iter().map(move |r| r[c].clone()))
            })
            .collect();
        (ColumnarBatch::new(cols, rows.len()), rows)
    }

    /// The compiled column result at each row must equal the interpreter.
    fn assert_matches_interpreter(e: &Expr) {
        let s = schema();
        let bound = bind(e, &s).unwrap();
        let compiled = compile(e, &s).unwrap();
        let (batch, rows) = batch();
        let out = compiled.eval_column(&batch).unwrap();
        for (i, row) in rows.iter().enumerate() {
            let want = eval(&bound, row).unwrap();
            let got = out.value(i);
            match (&want, &got) {
                // A NULL-typed projection is all-null in both paths.
                (Value::Null, Value::Null) => {}
                _ => assert_eq!(got, want, "{e} @ row {i}"),
            }
        }
    }

    #[test]
    fn arithmetic_comparisons_and_logic_match_interpreter() {
        for e in [
            col("a").add(lit(1i64)),
            col("a").mul(col("a")).sub(lit(2i64)),
            col("a").mul(col("b")),
            col("b").div(lit(4.0)),
            col("a").div(lit(4i64)),
            col("a").neg(),
            col("b").neg(),
            col("a").gt(lit(0i64)),
            col("a").lt_eq(col("b")),
            col("b").eq(lit(0.0)),
            col("s").eq(lit("hi")),
            col("s").not_eq(lit("ho")),
            col("s").lt(col("s")),
            col("flag").not(),
            col("flag").and(col("a").gt(lit(0i64))),
            col("flag").or(col("a").gt(lit(0i64))),
            col("flag").eq(lit(true)),
            col("a").eq(lit(Value::Null)),
            lit(1i64).add(lit(2i64)).mul(col("a")),
        ] {
            assert_matches_interpreter(&e);
        }
    }

    #[test]
    fn predicate_mask_matches_interpreter() {
        let s = schema();
        let (b, rows) = batch();
        for e in [
            col("a").gt(lit(0i64)),
            col("flag").and(col("b").gt_eq(lit(0.0))),
            col("a").eq(lit(Value::Null)).or(col("flag")),
            col("s").eq(lit("hi")),
        ] {
            let bound = bind(&e, &s).unwrap();
            let mask = compile(&e, &s).unwrap().eval_mask(&b).unwrap();
            for (i, row) in rows.iter().enumerate() {
                assert_eq!(mask[i], eval_predicate(&bound, row).unwrap(), "{e} @ {i}");
            }
        }
    }

    #[test]
    fn eval_f64_matches_interpreter() {
        let s = schema();
        let (b, rows) = batch();
        for e in [
            col("a"),
            col("b"),
            col("a").mul(col("b")),
            col("b").add(lit(1.5)),
        ] {
            let bound = bind(&e, &s).unwrap();
            let (vals, validity) = compile(&e, &s).unwrap().eval_f64(&b).unwrap();
            for (i, row) in rows.iter().enumerate() {
                let want = eval_f64(&bound, row).unwrap();
                let got = validity.as_ref().is_none_or(|v| v[i]).then_some(vals[i]);
                assert_eq!(got, want, "{e} @ {i}");
            }
        }
    }

    #[test]
    fn division_by_zero_faithful_to_short_circuit() {
        let s = schema();
        let (b, _) = batch();
        // Unmasked: row `a = 0` divides by zero through `6 / a`.
        let e = lit(6i64).div(col("a")).gt(lit(0i64));
        let err = compile(&e, &s).unwrap().eval_mask(&b).unwrap_err();
        assert_eq!(err, ExprError::DivisionByZero);
        // Masked by a definite-false left operand: never raised.
        let e = lit(false).and(lit(6i64).div(col("a")).gt(lit(0i64)));
        let mask = compile(&e, &s).unwrap().eval_mask(&b).unwrap();
        assert!(mask.iter().all(|&m| !m));
        // Masked by a definite-true left operand of OR.
        let e = lit(true).or(lit(6i64).div(col("a")).gt(lit(0i64)));
        let mask = compile(&e, &s).unwrap().eval_mask(&b).unwrap();
        assert!(mask.iter().all(|&m| m));
        // A NULL left operand does NOT mask the right (the interpreter
        // evaluates it): still an error.
        let e = col("a")
            .eq(lit(Value::Null))
            .and(lit(6i64).div(col("a")).gt(lit(0i64)));
        assert_eq!(
            compile(&e, &s).unwrap().eval_mask(&b).unwrap_err(),
            ExprError::DivisionByZero
        );
    }

    #[test]
    fn null_folding_keeps_division_errors_alive() {
        // The row interpreter evaluates BOTH operands before the null
        // check, so `6 / a = NULL` errors on a = 0 even though the result
        // would be NULL — folding to a plain constant null must not
        // swallow that.
        let s = schema();
        let (b, _) = batch(); // contains a row with a = 0
        for e in [
            lit(6i64).div(col("a")).eq(lit(Value::Null)),
            lit(Value::Null).eq(lit(6i64).div(col("a"))),
            lit(Value::Null).add(lit(6i64).div(col("a"))),
            lit(6i64).div(col("a")).add(lit(Value::Null)).gt(lit(0.0)),
        ] {
            let c = compile(&e, &s).unwrap();
            assert_eq!(
                c.eval_mask(&b).unwrap_err(),
                ExprError::DivisionByZero,
                "{e}"
            );
        }
        // eval_f64 and eval_column surface the guard errors too.
        let e = lit(Value::Null).add(lit(6i64).div(col("a")));
        let c = compile(&e, &s).unwrap();
        assert_eq!(c.eval_f64(&b).unwrap_err(), ExprError::DivisionByZero);
        assert_eq!(c.eval_column(&b).unwrap_err(), ExprError::DivisionByZero);
        // Short-circuiting still masks a guarded null on the right.
        let e = lit(false).and(lit(6i64).div(col("a")).eq(lit(Value::Null)));
        let mask = compile(&e, &s).unwrap().eval_mask(&b).unwrap();
        assert!(mask.iter().all(|&m| !m));
        // An error-free discarded operand still folds to the plain null.
        let c = compile(&col("a").eq(lit(Value::Null)), &s).unwrap();
        assert!(matches!(c.kernel, Kernel::Bool(BoolK::ConstNull)));
        // Guards keep their column references visible to columns_used.
        let c = compile(&lit(6i64).div(col("a")).eq(lit(Value::Null)), &s).unwrap();
        assert_eq!(c.columns_used(), vec![0]);
    }

    #[test]
    fn constant_folding() {
        let s = schema();
        // Literal-only subtree folds to a constant kernel.
        let c = compile(&lit(2i64).add(lit(3i64)).mul(lit(4i64)), &s).unwrap();
        assert!(matches!(c.kernel, Kernel::Num(NumK::Int(IntK::Const(20)))));
        let c = compile(&lit(1.0).sub(lit(0.25)), &s).unwrap();
        assert!(matches!(
            c.kernel,
            Kernel::Num(NumK::Float(FloatK::Const(v))) if v == 0.75
        ));
        let c = compile(&lit(2i64).lt(lit(3i64)), &s).unwrap();
        assert!(matches!(c.kernel, Kernel::Bool(BoolK::Const(true))));
        // TRUE AND x folds to x.
        let c = compile(&lit(true).and(col("flag")), &s).unwrap();
        assert!(matches!(c.kernel, Kernel::Bool(BoolK::Col(3))));
        // Int ÷ 0 must NOT fold (it is a runtime error, possibly masked).
        let c = compile(&lit(1i64).div(lit(0i64)), &s).unwrap();
        assert!(matches!(
            c.kernel,
            Kernel::Num(NumK::Float(FloatK::DivInt(_, _)))
        ));
    }

    #[test]
    fn columns_used_and_remap() {
        let s = schema();
        let mut c = compile(&col("b").mul(col("a").add(col("b"))), &s).unwrap();
        assert_eq!(c.columns_used(), vec![0, 1]);
        c.remap_columns(&|i| i + 10);
        assert_eq!(c.columns_used(), vec![10, 11]);
    }

    #[test]
    fn type_and_binding_errors_surface_at_compile() {
        let s = schema();
        assert!(compile(&col("s").add(lit(1i64)), &s).is_err());
        assert!(compile(&col("missing"), &s).is_err());
        assert!(compile(&col("a").and(col("flag")), &s).is_err());
        // Non-boolean predicate: compile succeeds, eval_mask errors.
        let (b, _) = batch();
        let err = compile(&col("a"), &s).unwrap().eval_mask(&b).unwrap_err();
        assert!(err.to_string().contains("non-boolean"), "{err}");
    }

    #[test]
    fn data_types_mirror_the_binder() {
        let s = schema();
        for (e, want) in [
            (col("a").add(lit(1i64)), Some(DataType::Int)),
            (col("a").div(lit(2i64)), Some(DataType::Float)),
            (col("a").gt(lit(0i64)), Some(DataType::Bool)),
            (col("s"), Some(DataType::Str)),
            (lit(Value::Null), None),
        ] {
            assert_eq!(compile(&e, &s).unwrap().data_type(), want, "{e}");
            assert_eq!(
                crate::eval::data_type(&bind(&e, &s).unwrap(), &s).unwrap(),
                want
            );
        }
    }

    #[test]
    fn string_const_fast_path_handles_nulls() {
        let s = schema();
        let (b, rows) = batch();
        let e = col("s").gt_eq(lit("hi"));
        let bound = bind(&e, &s).unwrap();
        let out = compile(&e, &s).unwrap().eval_column(&b).unwrap();
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(out.value(i), eval(&bound, row).unwrap(), "row {i}");
        }
    }
}
