//! # sa-expr — scalar expressions
//!
//! The expression language of the engine: a small AST ([`Expr`]) with a
//! fluent builder ([`col`], [`lit`]), a name-resolving, type-checking binder
//! ([`bind`]) and a row evaluator ([`eval()`]) with SQL three-valued logic.
//!
//! Everything the paper's queries need is covered: arithmetic for aggregate
//! expressions like `l_discount * (1.0 - l_tax)`, comparisons for selection
//! predicates like `l_extendedprice > 100.0`, and equality for join
//! conditions like `l_orderkey = o_orderkey`.

#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod error;
pub mod eval;

pub use ast::{col, lit, BinOp, Expr, UnOp};
pub use compile::{compile, CompiledExpr};
pub use error::ExprError;
pub use eval::{bind, data_type, eval, eval_f64, eval_predicate};

/// Crate-wide result alias.
pub type Result<T, E = ExprError> = std::result::Result<T, E>;
