//! Error type for expression binding and evaluation.

use std::fmt;

use sa_storage::StorageError;

/// Errors from binding names, type-checking, or evaluating expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprError {
    /// Underlying storage error (unknown/ambiguous column, …).
    Storage(StorageError),
    /// An operator applied to operands of unsupported types.
    TypeError {
        /// Human-readable description of the offending application.
        message: String,
    },
    /// Division by zero (integer); float division yields ±inf instead.
    DivisionByZero,
    /// Evaluation of an expression that was never bound to a schema.
    Unbound {
        /// The unbound column name.
        name: String,
    },
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::Storage(e) => write!(f, "{e}"),
            ExprError::TypeError { message } => write!(f, "type error: {message}"),
            ExprError::DivisionByZero => write!(f, "integer division by zero"),
            ExprError::Unbound { name } => {
                write!(f, "column `{name}` evaluated before binding to a schema")
            }
        }
    }
}

impl std::error::Error for ExprError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExprError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for ExprError {
    fn from(e: StorageError) -> Self {
        ExprError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ExprError::TypeError {
            message: "Int + Str".into(),
        };
        assert!(e.to_string().contains("Int + Str"));
        let e: ExprError = StorageError::UnknownColumn { name: "x".into() }.into();
        assert!(e.to_string().contains('x'));
        assert!(std::error::Error::source(&e).is_some());
    }
}
