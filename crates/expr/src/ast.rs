//! Scalar expression AST with a fluent builder API.
//!
//! Expressions reference columns by (possibly qualified) name; the binder in
//! [`crate::eval()`] resolves names to row offsets against a schema before
//! evaluation. Example:
//!
//! ```
//! use sa_expr::{col, lit};
//! // l_discount * (1.0 - l_tax)   — the paper's running aggregate
//! let f = col("l_discount").mul(lit(1.0).sub(col("l_tax")));
//! assert_eq!(f.to_string(), "l_discount * (1 - l_tax)");
//! ```

use std::fmt;

use sa_storage::Value;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinOp {
    /// True for comparison operators producing booleans.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
        )
    }

    /// True for `AND`/`OR`.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// True for arithmetic operators.
    pub fn is_arithmetic(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div)
    }

    /// SQL rendering.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical NOT (Kleene three-valued).
    Not,
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference by (possibly qualified) name.
    Column(String),
    /// A column resolved to a row offset (produced by the binder).
    BoundColumn {
        /// Offset into the row.
        index: usize,
        /// Original name, kept for display.
        name: String,
    },
    /// A literal value.
    Literal(Value),
    /// Binary application.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary application.
    Unary {
        /// The operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
}

/// A column reference.
pub fn col(name: impl Into<String>) -> Expr {
    Expr::Column(name.into())
}

/// A literal.
pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Literal(v.into())
}

macro_rules! binop_method {
    ($name:ident, $op:expr) => {
        /// Apply the corresponding binary operator.
        pub fn $name(self, rhs: Expr) -> Expr {
            Expr::Binary {
                op: $op,
                left: Box::new(self),
                right: Box::new(rhs),
            }
        }
    };
}

#[allow(clippy::should_implement_trait)] // fluent builder named after SQL operators
impl Expr {
    binop_method!(add, BinOp::Add);
    binop_method!(sub, BinOp::Sub);
    binop_method!(mul, BinOp::Mul);
    binop_method!(div, BinOp::Div);
    binop_method!(eq, BinOp::Eq);
    binop_method!(not_eq, BinOp::NotEq);
    binop_method!(lt, BinOp::Lt);
    binop_method!(lt_eq, BinOp::LtEq);
    binop_method!(gt, BinOp::Gt);
    binop_method!(gt_eq, BinOp::GtEq);
    binop_method!(and, BinOp::And);
    binop_method!(or, BinOp::Or);

    /// Arithmetic negation.
    pub fn neg(self) -> Expr {
        Expr::Unary {
            op: UnOp::Neg,
            expr: Box::new(self),
        }
    }

    /// Logical NOT.
    pub fn not(self) -> Expr {
        Expr::Unary {
            op: UnOp::Not,
            expr: Box::new(self),
        }
    }

    /// Collect every column name referenced by this expression, in first-use
    /// order without duplicates.
    pub fn columns_used(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        self.visit_columns(&mut |name| {
            if !out.contains(&name) {
                out.push(name);
            }
        });
        out
    }

    fn visit_columns<'a>(&'a self, f: &mut impl FnMut(&'a str)) {
        match self {
            Expr::Column(name) => f(name),
            Expr::BoundColumn { name, .. } => f(name),
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.visit_columns(f);
                right.visit_columns(f);
            }
            Expr::Unary { expr, .. } => expr.visit_columns(f),
        }
    }

    /// Split a conjunctive predicate into its `AND`ed factors.
    pub fn split_conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        self.collect_conjuncts(&mut out);
        out
    }

    fn collect_conjuncts<'a>(&'a self, out: &mut Vec<&'a Expr>) {
        match self {
            Expr::Binary {
                op: BinOp::And,
                left,
                right,
            } => {
                left.collect_conjuncts(out);
                right.collect_conjuncts(out);
            }
            other => out.push(other),
        }
    }

    /// Rebuild a predicate from conjuncts (`TRUE` for an empty list).
    pub fn conjoin(mut parts: Vec<Expr>) -> Expr {
        match parts.len() {
            0 => lit(true),
            1 => parts.pop().expect("len checked"),
            _ => {
                let mut it = parts.into_iter();
                let first = it.next().expect("non-empty");
                it.fold(first, |acc, e| acc.and(e))
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(name) => write!(f, "{name}"),
            Expr::BoundColumn { name, .. } => write!(f, "{name}"),
            Expr::Literal(Value::Str(s)) => write!(f, "'{s}'"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Binary { op, left, right } => {
                let fmt_side = |side: &Expr, f: &mut fmt::Formatter<'_>| -> fmt::Result {
                    // Parenthesize nested binaries for unambiguous output.
                    if matches!(side, Expr::Binary { .. }) {
                        write!(f, "({side})")
                    } else {
                        write!(f, "{side}")
                    }
                };
                fmt_side(left, f)?;
                write!(f, " {} ", op.symbol())?;
                fmt_side(right, f)
            }
            Expr::Unary {
                op: UnOp::Neg,
                expr,
            } => write!(f, "-({expr})"),
            Expr::Unary {
                op: UnOp::Not,
                expr,
            } => write!(f, "NOT ({expr})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_expected_tree() {
        let e = col("a").add(lit(1i64));
        match &e {
            Expr::Binary { op, left, right } => {
                assert_eq!(*op, BinOp::Add);
                assert_eq!(**left, col("a"));
                assert_eq!(**right, lit(1i64));
            }
            _ => panic!("expected binary"),
        }
    }

    #[test]
    fn display_paper_aggregate() {
        let f = col("l_discount").mul(lit(1.0).sub(col("l_tax")));
        assert_eq!(f.to_string(), "l_discount * (1 - l_tax)");
    }

    #[test]
    fn display_strings_quoted() {
        assert_eq!(lit("BUILDING").to_string(), "'BUILDING'");
    }

    #[test]
    fn columns_used_deduplicates_in_order() {
        let e = col("a").add(col("b")).mul(col("a"));
        assert_eq!(e.columns_used(), vec!["a", "b"]);
    }

    #[test]
    fn split_conjuncts_flattens_and_chains() {
        let e = col("a")
            .eq(lit(1i64))
            .and(col("b").gt(lit(2i64)))
            .and(col("c").lt(lit(3i64)));
        let parts = e.split_conjuncts();
        assert_eq!(parts.len(), 3);
        // ORs are not split.
        let e = col("a").eq(lit(1i64)).or(col("b").eq(lit(2i64)));
        assert_eq!(e.split_conjuncts().len(), 1);
    }

    #[test]
    fn conjoin_inverts_split() {
        let parts = vec![col("a").eq(lit(1i64)), col("b").gt(lit(2i64))];
        let e = Expr::conjoin(parts.clone());
        let split: Vec<Expr> = e.split_conjuncts().into_iter().cloned().collect();
        assert_eq!(split, parts);
        assert_eq!(Expr::conjoin(vec![]), lit(true));
        assert_eq!(Expr::conjoin(vec![col("x")]), col("x"));
    }

    #[test]
    fn op_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(BinOp::And.is_logical());
        assert!(BinOp::Div.is_arithmetic());
        assert!(!BinOp::Add.is_comparison());
    }

    #[test]
    fn unary_display() {
        assert_eq!(col("x").neg().to_string(), "-(x)");
        assert_eq!(col("p").not().to_string(), "NOT (p)");
    }
}
