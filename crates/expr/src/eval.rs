//! Binding and evaluation of expressions against rows.
//!
//! * [`bind`] resolves column names to row offsets against a
//!   [`Schema`] and type-checks the tree;
//! * [`eval`] computes a [`Value`] for one row.
//!
//! SQL three-valued logic: any comparison or arithmetic with `NULL` yields
//! `NULL`; `AND`/`OR`/`NOT` follow Kleene logic; a `NULL` predicate result is
//! treated as *false* by filters (that decision lives in the executor).

use sa_storage::{DataType, Schema, Value};

use crate::ast::{BinOp, Expr, UnOp};
use crate::error::ExprError;
use crate::Result;

/// Resolve all column references in `expr` against `schema` and type-check.
/// Returns a new tree whose columns are [`Expr::BoundColumn`]s.
pub fn bind(expr: &Expr, schema: &Schema) -> Result<Expr> {
    let bound = bind_rec(expr, schema)?;
    // Type-check eagerly so errors surface at plan time, not per-row.
    data_type(&bound, schema)?;
    Ok(bound)
}

fn bind_rec(expr: &Expr, schema: &Schema) -> Result<Expr> {
    Ok(match expr {
        Expr::Column(name) => Expr::BoundColumn {
            index: schema.index_of(name)?,
            name: name.clone(),
        },
        Expr::BoundColumn { index, name } => {
            // Re-binding against a new schema: resolve by name again.
            let _ = index;
            Expr::BoundColumn {
                index: schema.index_of(name)?,
                name: name.clone(),
            }
        }
        Expr::Literal(v) => Expr::Literal(v.clone()),
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(bind_rec(left, schema)?),
            right: Box::new(bind_rec(right, schema)?),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(bind_rec(expr, schema)?),
        },
    })
}

/// Static result type of a bound expression (`None` encodes "nullable
/// unknown", which only happens for the bare `NULL` literal).
pub fn data_type(expr: &Expr, schema: &Schema) -> Result<Option<DataType>> {
    Ok(match expr {
        Expr::Column(name) => Some(schema.field(schema.index_of(name)?).data_type),
        Expr::BoundColumn { index, .. } => Some(schema.field(*index).data_type),
        Expr::Literal(v) => v.data_type(),
        Expr::Binary { op, left, right } => {
            let lt = data_type(left, schema)?;
            let rt = data_type(right, schema)?;
            match (lt, rt) {
                (None, _) | (_, None) => None,
                (Some(l), Some(r)) => Some(binary_result_type(*op, l, r)?),
            }
        }
        Expr::Unary { op, expr } => {
            let t = data_type(expr, schema)?;
            match (op, t) {
                (_, None) => None,
                (UnOp::Neg, Some(t)) if t.is_numeric() => Some(t),
                (UnOp::Not, Some(DataType::Bool)) => Some(DataType::Bool),
                (op, Some(t)) => {
                    return Err(ExprError::TypeError {
                        message: format!("{op:?} applied to {t}"),
                    })
                }
            }
        }
    })
}

fn binary_result_type(op: BinOp, l: DataType, r: DataType) -> Result<DataType> {
    use DataType::*;
    if op.is_arithmetic() {
        return match (l, r) {
            (Int, Int) if op != BinOp::Div => Ok(Int),
            // SQL-ish choice: division always yields Float.
            (Int, Int) => Ok(Float),
            (Int, Float) | (Float, Int) | (Float, Float) => Ok(Float),
            _ => Err(ExprError::TypeError {
                message: format!("{l} {} {r}", op.symbol()),
            }),
        };
    }
    if op.is_comparison() {
        let comparable = matches!(
            (l, r),
            (Int, Int) | (Int, Float) | (Float, Int) | (Float, Float) | (Str, Str) | (Bool, Bool)
        );
        return if comparable {
            Ok(Bool)
        } else {
            Err(ExprError::TypeError {
                message: format!("{l} {} {r}", op.symbol()),
            })
        };
    }
    // Logical.
    if l == Bool && r == Bool {
        Ok(Bool)
    } else {
        Err(ExprError::TypeError {
            message: format!("{l} {} {r}", op.symbol()),
        })
    }
}

/// Evaluate a bound expression against one row.
pub fn eval(expr: &Expr, row: &[Value]) -> Result<Value> {
    Ok(match expr {
        Expr::Column(name) => {
            return Err(ExprError::Unbound { name: name.clone() });
        }
        Expr::BoundColumn { index, .. } => row[*index].clone(),
        Expr::Literal(v) => v.clone(),
        Expr::Binary { op, left, right } => {
            // Short-circuit Kleene AND/OR before evaluating the right side.
            if *op == BinOp::And || *op == BinOp::Or {
                return eval_logical(*op, left, right, row);
            }
            let l = eval(left, row)?;
            let r = eval(right, row)?;
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            if op.is_arithmetic() {
                eval_arith(*op, &l, &r)?
            } else {
                eval_compare(*op, &l, &r)?
            }
        }
        Expr::Unary { op, expr } => {
            let v = eval(expr, row)?;
            match (op, v) {
                (_, Value::Null) => Value::Null,
                (UnOp::Neg, Value::Int(i)) => Value::Int(i.wrapping_neg()),
                (UnOp::Neg, Value::Float(f)) => Value::Float(-f),
                (UnOp::Not, Value::Bool(b)) => Value::Bool(!b),
                (op, v) => {
                    return Err(ExprError::TypeError {
                        message: format!("{op:?} applied to {v:?}"),
                    })
                }
            }
        }
    })
}

fn eval_logical(op: BinOp, left: &Expr, right: &Expr, row: &[Value]) -> Result<Value> {
    let l = eval(left, row)?;
    match (op, &l) {
        (BinOp::And, Value::Bool(false)) => return Ok(Value::Bool(false)),
        (BinOp::Or, Value::Bool(true)) => return Ok(Value::Bool(true)),
        _ => {}
    }
    let r = eval(right, row)?;
    Ok(match (op, l, r) {
        (BinOp::And, Value::Bool(a), Value::Bool(b)) => Value::Bool(a && b),
        (BinOp::Or, Value::Bool(a), Value::Bool(b)) => Value::Bool(a || b),
        // Kleene: NULL AND false = false; NULL OR true = true; else NULL.
        (BinOp::And, Value::Null, Value::Bool(false)) => Value::Bool(false),
        (BinOp::Or, Value::Null, Value::Bool(true)) => Value::Bool(true),
        (BinOp::And, Value::Null, _) | (BinOp::And, _, Value::Null) => Value::Null,
        (BinOp::Or, Value::Null, _) | (BinOp::Or, _, Value::Null) => Value::Null,
        (op, l, r) => {
            return Err(ExprError::TypeError {
                message: format!("{l:?} {} {r:?}", op.symbol()),
            })
        }
    })
}

fn eval_arith(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    use Value::*;
    Ok(match (l, r) {
        (Int(a), Int(b)) => match op {
            BinOp::Add => Int(a.wrapping_add(*b)),
            BinOp::Sub => Int(a.wrapping_sub(*b)),
            BinOp::Mul => Int(a.wrapping_mul(*b)),
            BinOp::Div => {
                if *b == 0 {
                    return Err(ExprError::DivisionByZero);
                }
                Float(*a as f64 / *b as f64)
            }
            _ => unreachable!("arithmetic op"),
        },
        _ => {
            let (a, b) = match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(ExprError::TypeError {
                        message: format!("{l:?} {} {r:?}", op.symbol()),
                    })
                }
            };
            match op {
                BinOp::Add => Float(a + b),
                BinOp::Sub => Float(a - b),
                BinOp::Mul => Float(a * b),
                BinOp::Div => Float(a / b),
                _ => unreachable!("arithmetic op"),
            }
        }
    })
}

fn eval_compare(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    // Cross-type numeric comparison is meaningful; everything else requires
    // identical type tags (checked by the binder, re-checked cheaply here).
    let comparable = matches!(
        (l, r),
        (
            Value::Int(_) | Value::Float(_),
            Value::Int(_) | Value::Float(_)
        ) | (Value::Str(_), Value::Str(_))
            | (Value::Bool(_), Value::Bool(_))
    );
    if !comparable {
        return Err(ExprError::TypeError {
            message: format!("{l:?} {} {r:?}", op.symbol()),
        });
    }
    let ord = l.total_cmp(r);
    let b = match op {
        BinOp::Eq => ord.is_eq(),
        BinOp::NotEq => !ord.is_eq(),
        BinOp::Lt => ord.is_lt(),
        BinOp::LtEq => ord.is_le(),
        BinOp::Gt => ord.is_gt(),
        BinOp::GtEq => ord.is_ge(),
        _ => unreachable!("comparison op"),
    };
    Ok(Value::Bool(b))
}

/// Evaluate a bound predicate for filtering: `NULL` counts as not-passing.
pub fn eval_predicate(expr: &Expr, row: &[Value]) -> Result<bool> {
    match eval(expr, row)? {
        Value::Bool(b) => Ok(b),
        Value::Null => Ok(false),
        other => Err(ExprError::TypeError {
            message: format!("predicate evaluated to non-boolean {other:?}"),
        }),
    }
}

/// Evaluate a bound numeric expression as `f64` (`NULL` → `None`).
pub fn eval_f64(expr: &Expr, row: &[Value]) -> Result<Option<f64>> {
    match eval(expr, row)? {
        Value::Null => Ok(None),
        v => v.as_f64().map(Some).ok_or_else(|| ExprError::TypeError {
            message: format!("expected numeric result, got {v:?}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{col, lit};
    use sa_storage::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Float),
            Field::new("s", DataType::Str),
            Field::new("flag", DataType::Bool),
        ])
        .unwrap()
    }

    fn row() -> Vec<Value> {
        vec![
            Value::Int(6),
            Value::Float(0.5),
            Value::str("hi"),
            Value::Bool(true),
        ]
    }

    #[test]
    fn arithmetic_and_binding() {
        let e = bind(&col("a").mul(col("b")), &schema()).unwrap();
        assert_eq!(eval(&e, &row()).unwrap(), Value::Float(3.0));
        let e = bind(&col("a").add(lit(1i64)), &schema()).unwrap();
        assert_eq!(eval(&e, &row()).unwrap(), Value::Int(7));
    }

    #[test]
    fn int_division_yields_float() {
        let e = bind(&col("a").div(lit(4i64)), &schema()).unwrap();
        assert_eq!(eval(&e, &row()).unwrap(), Value::Float(1.5));
        assert_eq!(data_type(&e, &schema()).unwrap(), Some(DataType::Float));
    }

    #[test]
    fn int_division_by_zero_errors() {
        let e = bind(&col("a").div(lit(0i64)), &schema()).unwrap();
        assert_eq!(eval(&e, &row()).unwrap_err(), ExprError::DivisionByZero);
    }

    #[test]
    fn comparisons() {
        let s = schema();
        let r = row();
        for (e, expect) in [
            (col("a").gt(lit(5i64)), true),
            (col("a").lt(lit(5i64)), false),
            (col("a").eq(lit(6.0)), true), // cross-type numeric
            (col("s").eq(lit("hi")), true),
            (col("s").not_eq(lit("ho")), true),
            (col("a").gt_eq(lit(6i64)), true),
            (col("a").lt_eq(lit(5i64)), false),
        ] {
            let b = bind(&e, &s).unwrap();
            assert_eq!(eval(&b, &r).unwrap(), Value::Bool(expect), "{e}");
        }
    }

    #[test]
    fn null_propagates_through_arith_and_compare() {
        let s = schema();
        let mut r = row();
        r[0] = Value::Null;
        let e = bind(&col("a").add(lit(1i64)), &s).unwrap();
        assert!(eval(&e, &r).unwrap().is_null());
        let e = bind(&col("a").eq(lit(1i64)), &s).unwrap();
        assert!(eval(&e, &r).unwrap().is_null());
        assert!(!eval_predicate(&e, &r).unwrap()); // NULL filters out
    }

    #[test]
    fn kleene_logic() {
        let s = schema();
        let null_pred = col("a").eq(lit(Value::Null)); // always NULL
        let e = bind(&null_pred.clone().and(lit(false)), &s).unwrap();
        assert_eq!(eval(&e, &row()).unwrap(), Value::Bool(false));
        let e = bind(&null_pred.clone().or(lit(true)), &s).unwrap();
        assert_eq!(eval(&e, &row()).unwrap(), Value::Bool(true));
        let e = bind(&null_pred.clone().and(lit(true)), &s).unwrap();
        assert!(eval(&e, &row()).unwrap().is_null());
        let e = bind(&null_pred.or(lit(false)), &s).unwrap();
        assert!(eval(&e, &row()).unwrap().is_null());
    }

    #[test]
    fn short_circuit_avoids_rhs_errors() {
        // false AND (1/0) must not evaluate the division.
        let s = schema();
        let e = bind(&lit(false).and(col("a").div(lit(0i64)).gt(lit(0i64))), &s).unwrap();
        assert_eq!(eval(&e, &row()).unwrap(), Value::Bool(false));
        let e = bind(&lit(true).or(col("a").div(lit(0i64)).gt(lit(0i64))), &s).unwrap();
        assert_eq!(eval(&e, &row()).unwrap(), Value::Bool(true));
    }

    #[test]
    fn type_errors_caught_at_bind_time() {
        let s = schema();
        assert!(bind(&col("s").add(lit(1i64)), &s).is_err());
        assert!(bind(&col("a").and(col("flag")), &s).is_err());
        assert!(bind(&col("s").eq(lit(1i64)), &s).is_err());
        assert!(bind(&col("flag").neg(), &s).is_err());
        assert!(bind(&col("a").not(), &s).is_err());
        assert!(bind(&col("missing"), &s).is_err());
    }

    #[test]
    fn unbound_evaluation_rejected() {
        assert!(matches!(
            eval(&col("a"), &row()),
            Err(ExprError::Unbound { .. })
        ));
    }

    #[test]
    fn paper_aggregate_expression() {
        // l_discount * (1.0 - l_tax) over a row with discount=0.05, tax=0.02.
        let s = Schema::new(vec![
            Field::new("l_discount", DataType::Float),
            Field::new("l_tax", DataType::Float),
        ])
        .unwrap();
        let e = bind(&col("l_discount").mul(lit(1.0).sub(col("l_tax"))), &s).unwrap();
        let got = eval_f64(&e, &[Value::Float(0.05), Value::Float(0.02)])
            .unwrap()
            .unwrap();
        assert!((got - 0.049).abs() < 1e-12);
    }

    #[test]
    fn eval_f64_null_and_type() {
        let s = schema();
        let e = bind(&col("a"), &s).unwrap();
        assert_eq!(eval_f64(&e, &row()).unwrap(), Some(6.0));
        let mut r = row();
        r[0] = Value::Null;
        assert_eq!(eval_f64(&e, &r).unwrap(), None);
        let e = bind(&col("s"), &s).unwrap();
        assert!(eval_f64(&e, &row()).is_err());
    }

    #[test]
    fn predicate_requires_bool() {
        let s = schema();
        let e = bind(&col("a"), &s).unwrap();
        assert!(eval_predicate(&e, &row()).is_err());
    }

    #[test]
    fn rebinding_against_new_schema() {
        // Bind against one schema, then rebind against a wider one.
        let s1 = schema();
        let e = bind(&col("b").mul(lit(2.0)), &s1).unwrap();
        let s2 = Schema::new(vec![
            Field::new("z", DataType::Int),
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Float),
            Field::new("s", DataType::Str),
            Field::new("flag", DataType::Bool),
        ])
        .unwrap();
        let e2 = bind(&e, &s2).unwrap();
        let r2 = vec![
            Value::Int(0),
            Value::Int(6),
            Value::Float(0.5),
            Value::str("hi"),
            Value::Bool(true),
        ];
        assert_eq!(eval(&e2, &r2).unwrap(), Value::Float(1.0));
    }
}
